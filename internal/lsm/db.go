package lsm

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"sealdb/internal/dband"
	"sealdb/internal/extfs"
	"sealdb/internal/kv"
	"sealdb/internal/memtable"
	"sealdb/internal/obs"
	"sealdb/internal/platter"
	"sealdb/internal/smr"
	"sealdb/internal/sstable"
	"sealdb/internal/storage"
	"sealdb/internal/version"
	"sealdb/internal/vlog"
	"sealdb/internal/wal"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("lsm: database is closed")

// ErrNotFound is returned by Get when the key does not exist.
var ErrNotFound = errors.New("lsm: key not found")

// ErrDegraded is wrapped by every write rejected after a permanent
// device failure moved the DB into read-only degraded mode. Reads
// keep working from whatever state is durable; the first failure's
// cause is included in the returned error.
var ErrDegraded = errors.New("lsm: database is in read-only degraded mode")

// ErrCorruptBlock re-exports the sstable corruption sentinel: any read
// (Get, Scan, compaction input) that hit a block failing its CRC
// matches it under errors.Is. Callers above lsm (the server) map it to
// a distinct wire status without importing sstable.
var ErrCorruptBlock = sstable.ErrCorruptBlock

// Device bundles the emulated drive stack a DB runs on. It survives
// DB close, playing the role of the physical disk: reopening a DB on
// the same Device exercises MANIFEST and WAL recovery against the
// bytes that were actually written.
type Device struct {
	Disk    *platter.Disk
	Drive   smr.Drive
	Backend *storage.Backend
	// DBand is the dynamic band manager (SEALDB mode only).
	DBand *dband.Manager
	// ExtFS is the file-system-like allocator (LevelDB modes only).
	ExtFS *extfs.Allocator
}

// NewDevice builds the per-mode drive stack described in DESIGN.md.
func NewDevice(cfg Config) *Device {
	pcfg := platter.DefaultConfig(cfg.DiskCapacity)
	if s := cfg.DeviceTimeScale; s > 0 {
		pcfg.SeekTime = time.Duration(float64(pcfg.SeekTime) * s)
		pcfg.SettleTime = time.Duration(float64(pcfg.SettleTime) * s)
		pcfg.RotationalLatency = time.Duration(float64(pcfg.RotationalLatency) * s)
	}
	disk := platter.New(pcfg)
	dev := &Device{Disk: disk}
	// wrap layers the optional fault-injection hook and the transient
	// -error retry policy over a mode's base drive. Allocators that
	// need the concrete drive type keep the base; everything the
	// engine writes through goes via the wrapped stack.
	wrap := func(base smr.Drive) smr.Drive {
		if cfg.WrapDrive != nil {
			base = cfg.WrapDrive(base)
		}
		if cfg.writeRetries() > 0 {
			base = smr.NewRetry(base, cfg.writeRetries(), cfg.retryBackoff())
		}
		return base
	}
	switch cfg.Mode {
	case ModeLevelDB:
		drive := smr.NewFixedBand(disk, cfg.BandSize)
		dev.Drive = wrap(drive)
		dev.ExtFS = extfs.New(drive.Capacity())
		dev.Backend = storage.NewBackend(dev.Drive, dev.ExtFS)
	case ModeLevelDBSets:
		drive := smr.NewFixedBand(disk, cfg.BandSize)
		dev.Drive = wrap(drive)
		dev.ExtFS = extfs.New(drive.Capacity()).EnableGroups()
		dev.Backend = storage.NewBackend(dev.Drive, dev.ExtFS)
	case ModeSMRDB:
		drive := smr.NewFixedBand(disk, cfg.BandSize)
		dev.Drive = wrap(drive)
		dev.Backend = storage.NewBackend(dev.Drive, storage.NewBandAllocator(drive))
	case ModeSEALDB:
		drive := smr.NewRaw(disk, cfg.GuardSize)
		dev.Drive = wrap(drive)
		dev.DBand = dband.New(cfg.DiskCapacity, cfg.SSTableSize, cfg.GuardSize)
		dev.Backend = storage.NewBackend(dev.Drive, storage.NewDynamicBandAllocator(dev.DBand))
	default:
		panic(fmt.Sprintf("lsm: unknown mode %v", cfg.Mode))
	}
	return dev
}

// DB is the key-value engine. The public wrapper package sealdb
// re-exports it; see the package comment for the modes.
//
// Concurrency model: one big mutex, LevelDB style, with flushes and
// compactions running synchronously on the writer's goroutine. The
// experiments measure simulated device time, which is unaffected by
// host threading.
type DB struct {
	cfg Config
	dev *Device

	disk    *platter.Disk
	drive   smr.Drive
	backend *storage.Backend
	cache   *sstable.Cache
	vs      *version.Set

	// reg, journal, runtime and metrics are internally synchronized;
	// they are written once by initObs and safe to use without d.mu.
	reg     *obs.Registry
	journal *obs.Journal
	runtime *obs.RuntimeSampler
	metrics dbMetrics
	// tracer is the request tracer (trace.go). Its per-operation
	// state is serialized by mu (see the field comments there); the
	// enable flag is atomic, so SetTracing and the traced-path check
	// need no lock.
	tracer tracer

	// mu is the engine's big mutex (ROADMAP's top refactor target);
	// the obs wrapper profiles its wait/hold times under the
	// "lsm_db_mu" contention site when lock profiling is on.
	//
	// lsm_db_mu is the top of the lock hierarchy: it may be held
	// while acquiring any of the subsystem locks below, never the
	// reverse (enforced by sealvet's lockorder analyzer).
	//
	// lockorder: lsm_db_mu < version_set_mu
	// lockorder: lsm_db_mu < dband_manager_mu
	// lockorder: lsm_db_mu < storage_write_mu
	// lockorder: lsm_db_mu < storage_backend_mu
	// lockorder: lsm_db_mu < band_stats_mu
	mu        obs.Mutex
	tableLRU  []uint64 // open-table recency, most recent last
	mem       *memtable.MemTable
	walW      *wal.Writer
	walFile   *storage.AppendFile
	walLimit  int64
	walNum    uint64
	seq       kv.SeqNum
	memSeed   int64
	tables    map[uint64]*sstable.Table
	sets      *setRegistry
	snapshots map[kv.SeqNum]int // guarded by mu
	stats     Stats
	compID    int
	closed    bool
	// bgErr is the first permanent write-path failure; once set, the
	// DB is read-only degraded (LevelDB's bg_error_).
	bgErr error
	// recovery describes what the last OpenDevice found on disk.
	recovery RecoveryInfo
	// vlog is the value-log driver (vlog.go); populated only when
	// Config.ValueThreshold enables key–value separation.
	vlog vlogState

	// surface is the storage-surface observatory (surface.go), active
	// only in dynamic-band mode. Its own internal lock ("band_stats_mu",
	// a leaf) serializes the accounting, so accesses need no other lock.
	surface surface
	// surfaceSnapEvery is the device-ns between periodic observatory
	// snapshots (0 disables); set once at open, then read-only.
	surfaceSnapEvery int64
	surfaceSnapAt    int64 // device-ns of the last snapshot; guarded by mu

	// Iterator pinning (see pins.go): live iterators defer reclamation
	// of the table files they may still read.
	iterEpoch uint64
	iterPins  map[uint64]int
	reclaims  []pendingReclaim
}

// Open creates a fresh database on a new emulated device.
func Open(cfg Config) (*DB, error) {
	cfg.applyMode()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return OpenDevice(cfg, NewDevice(cfg))
}

// OpenDevice opens (or reopens) a database on an existing device.
// If the device holds a previous instance's state, it is recovered:
// the MANIFEST replays the file layout and the WAL replays the
// mutations that had not reached an SSTable.
func OpenDevice(cfg Config, dev *Device) (*DB, error) {
	cfg.applyMode()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &DB{
		cfg:       cfg,
		dev:       dev,
		disk:      dev.Disk,
		drive:     dev.Drive,
		backend:   dev.Backend,
		cache:     sstable.NewCache(cfg.BlockCacheSize),
		tables:    map[uint64]*sstable.Table{},
		sets:      newSetRegistry(),
		snapshots: map[kv.SeqNum]int{},
		iterPins:  map[uint64]int{},
		memSeed:   cfg.Seed,
	}
	d.mu.Profile("lsm_db_mu")
	d.mem = memtable.New(d.nextMemSeed())
	if dev.DBand != nil {
		d.surface.init(cfg.BandSize)
		d.surfaceSnapEvery = cfg.surfaceSnapshotEvery()
	}
	d.initObs()

	vcfg := version.Config{
		Backend:      d.backend,
		ManifestSize: cfg.ManifestSize,
		SortedLevel:  cfg.sortedLevel,
	}
	if _, err := d.backend.FileSize(version.CurrentFileNum); err == nil {
		vs, report, err := version.Recover(vcfg)
		if err != nil {
			return nil, err
		}
		d.vs = vs
		d.seq = vs.LastSeq()
		d.recovery.Manifest = report
		if report.TruncatedTail {
			d.journal.Record("manifest_truncated", map[string]int64{
				"manifest": int64(report.ManifestNum), "skipped_bytes": report.SkippedBytes,
				"records": int64(report.Records),
			})
		}
		// Sweep crash debris before anything allocates: a file created
		// by the previous instance whose manifest edit never landed
		// still occupies a number the recovered NextFileNum will hand
		// out again, so the mapping must be gone before WAL replay
		// flushes or a new WAL is created.
		d.sweepOrphans()
		if cfg.vlogEnabled() {
			if err := d.vlogRecover(); err != nil {
				return nil, err
			}
		}
		if err := d.recoverSetsAndWAL(); err != nil {
			return nil, err
		}
		if err := d.reconcileExtents(); err != nil {
			return nil, err
		}
	} else {
		// No CURRENT: nothing on this device is durable yet. A crash
		// during a previous first-time Create can still leave files
		// behind (a manifest whose CURRENT repoint never landed);
		// wipe them so creation starts from a clean mapping table.
		for _, fr := range d.backend.Files() {
			d.backend.Remove(fr.Num)
		}
		vs, err := version.Create(vcfg)
		if err != nil {
			return nil, err
		}
		d.vs = vs
		if cfg.vlogEnabled() {
			d.vlog.tab = vlog.NewTable()
		}
	}
	if err := d.newWAL(); err != nil {
		return nil, err
	}
	// Rebuild the storage-surface observatory from the recovered extent
	// table last, discarding whatever partial picture the allocator
	// observer accumulated during recovery traffic: after every open the
	// incremental band accounting equals a fresh scan by construction.
	d.surfaceRebuild()
	return d, nil
}

// RecoveryInfo describes what OpenDevice found while recovering:
// the manifest scan report, how much of the WAL replayed, and what
// crash debris (orphan files, leaked extents) was cleaned up.
type RecoveryInfo struct {
	// Manifest is nil when the device was freshly created.
	Manifest *version.RecoveryReport `json:"manifest,omitempty"`
	// WALRecords/WALEntries count the replayed batches and the
	// key-value mutations inside them.
	WALRecords int `json:"wal_records"`
	WALEntries int `json:"wal_entries"`
	// WALSkippedBytes counts log bytes discarded as torn or stale.
	WALSkippedBytes int64 `json:"wal_skipped_bytes"`
	// WALTornTail reports that the log ended in a torn or corrupt
	// record which was treated as the end of the log.
	WALTornTail bool `json:"wal_torn_tail"`
	// OrphanSets counts sets dropped because they had no live member.
	OrphanSets int `json:"orphan_sets"`
	// OrphanFiles counts backend files removed because no manifest
	// state referenced them (half-written flush/compaction outputs).
	OrphanFiles int `json:"orphan_files"`
	// LeakedBytes counts allocator bytes freed by extent
	// reconciliation (SEALDB mode): space the dynamic band manager
	// held that no file or set covered after a crash.
	LeakedBytes int64 `json:"leaked_bytes"`
	// VlogSegments counts value-log segments the manifest carried
	// into recovery; VlogTornBytes counts active-segment bytes
	// truncated as a torn trailing record.
	VlogSegments  int   `json:"vlog_segments"`
	VlogTornBytes int64 `json:"vlog_torn_bytes"`
}

// Recovery returns what the last OpenDevice found on this device.
func (d *DB) Recovery() RecoveryInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recovery
}

func (d *DB) nextMemSeed() int64 {
	d.memSeed++
	return d.memSeed
}

// writeAllowed rejects writes on a closed or degraded DB. Caller
// holds d.mu.
func (d *DB) writeAllowed() error {
	if d.closed {
		return ErrClosed
	}
	if d.bgErr != nil {
		return fmt.Errorf("%w (cause: %v)", ErrDegraded, d.bgErr)
	}
	return nil
}

// failWrite records a permanent write-path failure: the first one
// moves the DB into read-only degraded mode (LevelDB's bg_error_);
// reads keep serving durable state. Returns err for chaining. Caller
// holds d.mu.
func (d *DB) failWrite(err error) error {
	if err == nil || d.bgErr != nil {
		return err
	}
	d.bgErr = err
	d.metrics.degraded.Add(1)
	d.journal.Record("degraded", map[string]int64{})
	return err
}

// Degraded returns the permanent failure that moved the DB into
// read-only mode, or nil.
func (d *DB) Degraded() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bgErr
}

// Mode returns the engine's mode.
func (d *DB) Mode() Mode { return d.cfg.Mode }

// Config returns the configuration the DB was opened with.
func (d *DB) Config() Config { return d.cfg }

// Device returns the drive stack, for experiments that inspect
// placement, amplification and timing.
func (d *DB) Device() *Device { return d.dev }

// Seq returns the last assigned sequence number.
func (d *DB) Seq() kv.SeqNum {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// recoverSetsAndWAL rebuilds the set registry and replays the WAL.
func (d *DB) recoverSetsAndWAL() error {
	orphans := d.sets.rebuild(d.vs.Sets(), d.vs.Current())
	d.recovery.OrphanSets = len(orphans)
	if len(orphans) > 0 {
		// Sets that lost their last member without being dropped
		// (crash window): log the drops, then free the extents.
		e := &version.Edit{}
		for _, rec := range orphans {
			e.DropSets = append(e.DropSets, rec.ID)
		}
		if err := d.vs.LogAndApply(e); err != nil {
			return err
		}
		for _, rec := range orphans {
			if err := d.backend.FreeExtent(storage.Extent{Off: rec.Off, Len: rec.Len}); err != nil {
				return err
			}
		}
	}

	logNum := d.vs.LogNum()
	if logNum == 0 {
		return nil
	}
	// The logical size is not trusted after a crash: scan the whole
	// reserved extent and let the tagged strict framing find the true
	// end of the log. A torn final append, and any stale frames a
	// previous occupant of the extent left beyond it, fail their CRC
	// and end the replay cleanly instead of failing Open.
	limit, err := d.backend.ReservedSize(logNum)
	if err != nil {
		if errors.Is(err, storage.ErrNotFound) {
			return nil // already flushed and removed
		}
		return err
	}
	buf := make([]byte, limit)
	if _, err := d.backend.ReadReservedAt(logNum, buf, 0); err != nil && err != io.EOF {
		return err
	}
	r := wal.NewTaggedReader(&sliceReader{b: buf}, logNum).Strict()
	records, entries := 0, 0
	torn := false
	for {
		rec, err := r.ReadRecord()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fmt.Errorf("lsm: WAL replay: %w", err)
		}
		// Sequence continuity: every batch's base must extend the
		// recovered history exactly (flushes rotate the log, so the
		// first record continues LastSeq). Anything else is debris —
		// treat it as the end of the log.
		base, ok := batchBaseSeq(rec)
		if !ok || base != d.seq+1 {
			torn = true
			break
		}
		// Validate the whole batch before applying any of it, so a
		// record that frames correctly but does not decode cannot
		// leave half a batch in the memtable.
		if _, _, err := decodeBatch(rec, func(kv.SeqNum, kv.Kind, []byte, []byte) error { return nil }); err != nil {
			torn = true
			break
		}
		last, n, _ := decodeBatch(rec, func(seq kv.SeqNum, kind kv.Kind, key, value []byte) error {
			d.mem.Add(seq, kind, key, value)
			return nil
		})
		records++
		entries += n
		if last > d.seq {
			d.seq = last
		}
	}
	d.recovery.WALRecords = records
	d.recovery.WALEntries = entries
	d.recovery.WALSkippedBytes = r.Skipped()
	d.recovery.WALTornTail = torn || r.Skipped() > 0
	d.metrics.walReplaySkipped.Add(r.Skipped())
	d.journal.Record("wal_replay", map[string]int64{
		"log": int64(logNum), "records": int64(records), "entries": int64(entries),
		"skipped_bytes": r.Skipped(), "torn": boolToInt64(d.recovery.WALTornTail),
	})
	// Persist the replayed mutations as an L0 table so the old WAL
	// can be dropped, as LevelDB recovery does.
	if !d.mem.Empty() {
		if err := d.flushMemtable(d.mem, 0); err != nil {
			return err
		}
		d.mem = memtable.New(d.nextMemSeed())
	}
	d.backend.Remove(logNum)
	return nil
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// sweepOrphans removes backend files that no durable state
// references: half-written flush or compaction outputs, and WALs
// whose manifest edit never landed. Runs right after manifest
// recovery and before anything creates files, so the live set is
// exactly CURRENT, the manifest, the recorded log, and the files of
// the recovered version — and every orphan number is free for
// NewFileNum to reissue.
func (d *DB) sweepOrphans() {
	live := map[uint64]bool{
		version.CurrentFileNum: true,
		d.vs.ManifestNum():     true,
	}
	if n := d.vs.LogNum(); n != 0 {
		live[n] = true
	}
	cur := d.vs.Current()
	for l := 0; l < version.NumLevels; l++ {
		for _, f := range cur.Files[l] {
			live[f.Num] = true
		}
	}
	// Value-log segments the manifest registered are live; a segment
	// created whose registering edit never landed is debris like any
	// half-written SSTable.
	for num := range d.vs.VlogSegs() {
		live[num] = true
	}
	for _, fr := range d.backend.Files() {
		if live[fr.Num] {
			continue
		}
		d.backend.Remove(fr.Num)
		d.recovery.OrphanFiles++
		d.journal.Record("orphan_file_removed", map[string]int64{
			"num": int64(fr.Num), "bytes": fr.Extent.Len, "grouped": boolToInt64(fr.Grouped),
		})
	}
}

// reconcileExtents compares the dynamic band manager's allocated
// space against everything the recovered state actually owns and
// frees the difference — extents leaked when a crash landed between
// a manifest edit (e.g. DropSets) and the deferred FreeExtent, or
// between a group allocation and its manifest record. SEALDB only:
// the other modes' allocators are reconstructed per file by the
// orphan sweep.
func (d *DB) reconcileExtents() error {
	mgr := d.dev.DBand
	if mgr == nil {
		return nil
	}
	type span struct{ off, end int64 }
	var covered []span
	for _, fr := range d.backend.Files() {
		if fr.Grouped {
			continue // inside a set extent
		}
		covered = append(covered, span{fr.Extent.Off, fr.Extent.End()})
	}
	for _, sr := range d.vs.Sets() {
		covered = append(covered, span{sr.Off, sr.Off + sr.Len})
	}
	sort.Slice(covered, func(i, j int) bool { return covered[i].off < covered[j].off })
	// Walk the allocator's allocated runs and free every gap not
	// covered by a file or set.
	for _, band := range mgr.Bands() {
		pos := band.Off
		bandEnd := band.Off + band.Len
		for _, sp := range covered {
			if sp.end <= pos || sp.off >= bandEnd {
				continue
			}
			if sp.off > pos {
				if err := d.freeLeaked(pos, sp.off-pos); err != nil {
					return err
				}
			}
			if sp.end > pos {
				pos = sp.end
			}
		}
		if pos < bandEnd {
			if err := d.freeLeaked(pos, bandEnd-pos); err != nil {
				return err
			}
		}
	}
	return nil
}

func (d *DB) freeLeaked(off, length int64) error {
	d.recovery.LeakedBytes += length
	d.journal.Record("leaked_extent_reclaimed", map[string]int64{
		"off": off, "len": length,
	})
	return d.backend.FreeExtent(storage.Extent{Off: off, Len: length})
}

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// newWAL starts a fresh write-ahead log and records its number in the
// MANIFEST (so recovery knows which log to replay).
func (d *DB) newWAL() error {
	num := d.vs.NewFileNum()
	f, err := d.backend.CreateAppend(num, d.cfg.walSize())
	if err != nil {
		return err
	}
	old := d.walNum
	d.walNum = num
	d.walFile = f
	d.walLimit = d.cfg.walSize()
	d.walW = wal.NewTaggedWriter(f, num)
	if err := d.vs.LogAndApply(&version.Edit{HasLogNum: true, LogNum: num, HasLastSeq: true, LastSeq: d.seq}); err != nil {
		return err
	}
	if old != 0 {
		d.backend.Remove(old)
	}
	return nil
}

// Close shuts the database down. Buffered writes stay in the WAL on
// the device and are recovered by the next OpenDevice.
func (d *DB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.closed = true
	// No iterator can read past Close; run anything they deferred so
	// the device holds no unreachable files.
	d.iterPins = map[uint64]int{}
	d.runReclaims()
	d.tables = map[uint64]*sstable.Table{}
	return nil
}

// maxOpenTables returns the table-reader cache bound.
func (d *DB) maxOpenTables() int {
	if n := d.cfg.MaxOpenTables; n > 0 {
		return n
	}
	return 1000
}

// openTable returns (opening if needed) the reader for a table file,
// tracking recency and evicting the least recently used reader when
// the cache exceeds its bound. Caller holds d.mu.
func (d *DB) openTable(f *version.FileMeta) (*sstable.Table, error) {
	if t, ok := d.tables[f.Num]; ok {
		d.touchTable(f.Num)
		return t, nil
	}
	size, err := d.backend.FileSize(f.Num)
	if err != nil {
		return nil, fmt.Errorf("lsm: opening table %d: %w", f.Num, err)
	}
	t, err := sstable.Open(d.backend.Handle(f.Num), size, f.Num, d.cache)
	if err != nil {
		return nil, err
	}
	d.tables[f.Num] = t
	d.tableLRU = append(d.tableLRU, f.Num)
	for len(d.tables) > d.maxOpenTables() && len(d.tableLRU) > 0 {
		victim := d.tableLRU[0]
		d.tableLRU = d.tableLRU[1:]
		if victim == f.Num {
			d.tableLRU = append(d.tableLRU, victim)
			continue
		}
		delete(d.tables, victim)
	}
	return t, nil
}

// touchTable moves a table to the recent end of the LRU order.
// Caller holds d.mu. Linear, but the list is bounded and short.
func (d *DB) touchTable(num uint64) {
	for i, n := range d.tableLRU {
		if n == num {
			copy(d.tableLRU[i:], d.tableLRU[i+1:])
			d.tableLRU[len(d.tableLRU)-1] = num
			return
		}
	}
}

// dropTable forgets a deleted file's reader and cached blocks.
// Caller holds d.mu.
func (d *DB) dropTable(num uint64) {
	if _, ok := d.tables[num]; ok {
		delete(d.tables, num)
		for i, n := range d.tableLRU {
			if n == num {
				d.tableLRU = append(d.tableLRU[:i], d.tableLRU[i+1:]...)
				break
			}
		}
	}
	d.cache.EvictFile(num)
}
