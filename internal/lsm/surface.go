// Storage-surface observatory: online per-band live/dead byte
// accounting over the dynamic-band surface, with a logical-clock
// write-heat EWMA, owning-set attribution, and a continuous
// space-amplification counter (physical bytes on bands ÷ logical live
// bytes) next to the existing WA/AWA counters.
//
// The accounting is fed incrementally from the dband.Manager observer
// (every allocator event: frontier appends, free-list inserts, frees)
// plus explicit claim/dead charges from the compaction, band-GC and
// vlog-GC paths, and is rebuilt from the manifest-backed extent table
// at the end of every open — so after crash recovery the incremental
// counters equal a freshly computed scan by construction, and
// VerifyIntegrity re-derives the per-band totals from the extent table
// to prove they stayed equal.
//
// The heat clock is the simulated device clock (platter busy time)
// injected from the DB, keeping the observatory inside the same
// logical-time determinism contract as the rest of the device stack.
package lsm

import (
	"math"
	"sort"

	"sealdb/internal/dband"
	"sealdb/internal/obs"
)

// surfaceHeatHalfLife is the write-heat EWMA half-life in simulated
// device nanoseconds: a band's heat halves every 500ms of device busy
// time with no writes landing in it.
const surfaceHeatHalfLife = int64(500e6)

// surfExtent is one allocator-granularity extent on the surface: a
// plain file (SSTable, WAL, manifest, vlog segment) or a whole set
// group. dead counts the bytes inside it that are no longer logically
// live — invalidated set members, group slack, vlog garbage — but not
// yet returned to the free list.
type surfExtent struct {
	len   int64
	dead  int64
	owner uint64 // owning set id; 0 = not a set extent
}

// bandStat is the incrementally maintained per-band state. alloc
// tracks the bytes of live extents overlapping the band; writeBytes
// and heat track allocation traffic into it (heat decays, writeBytes
// does not).
type bandStat struct {
	alloc      int64
	writeBytes int64
	heat       float64
	heatAt     int64 // device-ns of the last heat decay
}

// surface is the observatory state. It hangs off the DB and is active
// only in dynamic-band mode (SEALDB).
//
// Locking: mu is a leaf below both the engine mutex and the allocator
// mutex — alloc/free arrive from the dband observer with
// dband_manager_mu held, claims and dead charges from engine paths
// with lsm_db_mu held. Surface methods never call back into the
// manager, the backend or the DB.
//
// lockorder: lsm_db_mu < band_stats_mu
// lockorder: dband_manager_mu < band_stats_mu
type surface struct {
	enabled bool  // set once before observers install, then read-only
	stride  int64 // band bucket width (Geometry.BandSize)

	mu    obs.Mutex             // profiled as "band_stats_mu"
	exts  map[int64]*surfExtent // keyed by extent offset; guarded by mu
	bands map[int64]*bandStat   // keyed by band index; guarded by mu
	phys  int64                 // Σ extent lens; guarded by mu
	dead  int64                 // Σ extent dead bytes; guarded by mu
}

// init arms the observatory. Called once from OpenDevice before the
// device observers are installed; stride is the band bucket width.
func (s *surface) init(stride int64) {
	s.enabled = true
	s.stride = stride
	s.mu.Profile("band_stats_mu")
	s.reset()
}

// reset clears all accounting. Caller holds no surface lock.
func (s *surface) reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.exts = make(map[int64]*surfExtent)
	s.bands = make(map[int64]*bandStat)
	s.phys, s.dead = 0, 0
}

// eachBand visits every band a byte range overlaps with the overlap
// length. Caller holds s.mu.
func (s *surface) eachBand(off, length int64, fn func(band, overlap int64)) {
	end := off + length
	for b := off / s.stride; b*s.stride < end; b++ {
		lo, hi := b*s.stride, (b+1)*s.stride
		if off > lo {
			lo = off
		}
		if end < hi {
			hi = end
		}
		fn(b, hi-lo)
	}
}

// band returns (creating if needed) a band's state. Caller holds s.mu.
func (s *surface) band(b int64) *bandStat {
	st := s.bands[b]
	if st == nil {
		st = &bandStat{}
		s.bands[b] = st
	}
	return st
}

// decay applies the EWMA half-life decay up to now. Caller holds s.mu.
func (st *bandStat) decay(now int64) {
	if dt := now - st.heatAt; dt > 0 {
		if st.heat > 0 {
			st.heat *= math.Exp2(-float64(dt) / float64(surfaceHeatHalfLife))
		}
		st.heatAt = now
	}
}

// alloc records an allocator grant: a new live extent at off. now is
// the device clock; the write heats every band the extent lands in.
func (s *surface) alloc(off, length, now int64) {
	if !s.enabled {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.exts[off] = &surfExtent{len: length}
	s.phys += length
	s.eachBand(off, length, func(b, overlap int64) {
		st := s.band(b)
		st.alloc += overlap
		st.writeBytes += overlap
		st.decay(now)
		st.heat += float64(overlap)
	})
}

// free records an allocator free. Unknown offsets are a tolerated
// no-op: during recovery the allocator replays frees (leaked-extent
// reclamation) for space the observatory never saw allocated, and the
// post-open rebuild resets everything from the extent table anyway.
func (s *surface) free(off int64) {
	if !s.enabled {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.exts[off]
	if e == nil {
		return
	}
	delete(s.exts, off)
	s.phys -= e.len
	s.dead -= e.dead
	s.eachBand(off, e.len, func(b, overlap int64) {
		s.band(b).alloc -= overlap
	})
}

// claim attributes the extent at off to a set and charges the group
// slack (extent length minus the members' data bytes — guard padding
// the allocator reserved) as dead. It returns the slack actually
// charged so the caller can journal it for the offline replay.
func (s *surface) claim(off int64, owner uint64, dataBytes int64) int64 {
	if !s.enabled {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.exts[off]
	if e == nil {
		return 0
	}
	e.owner = owner
	slack := e.len - dataBytes
	if slack <= 0 {
		return 0
	}
	return s.chargeLocked(e, slack)
}

// chargeDead charges n dead bytes against the extent at off, clamped
// so an extent is never more dead than long. It returns the bytes
// actually charged (0 when the extent is unknown).
func (s *surface) chargeDead(off, n int64) int64 {
	if !s.enabled || n <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.exts[off]
	if e == nil {
		return 0
	}
	return s.chargeLocked(e, n)
}

// chargeLocked clamps and applies a dead charge. Caller holds s.mu.
func (s *surface) chargeLocked(e *surfExtent, n int64) int64 {
	if room := e.len - e.dead; n > room {
		n = room
	}
	if n <= 0 {
		return 0
	}
	e.dead += n
	s.dead += n
	return n
}

// SurfaceExtent is the public form of one tracked extent, the replay
// baseline the trace analyzer starts from.
type SurfaceExtent struct {
	Off  int64  `json:"off"`
	Len  int64  `json:"len"`
	Dead int64  `json:"dead,omitempty"`
	Set  uint64 `json:"set,omitempty"`
}

// extents returns the tracked extents sorted by offset.
func (s *surface) extents() []SurfaceExtent {
	if !s.enabled {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SurfaceExtent, 0, len(s.exts))
	for off, e := range s.exts {
		out = append(out, SurfaceExtent{Off: off, Len: e.len, Dead: e.dead, Set: e.owner})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Off < out[j].Off })
	return out
}

// totals returns (physical, dead) bytes across all tracked extents.
func (s *surface) totals() (phys, dead int64) {
	if !s.enabled {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.phys, s.dead
}

// BandRow is one band of the /debug/bands payload and the
// band_snapshot journal event: incremental alloc/heat state joined
// with the dead bytes and owning sets derived from the extent map.
type BandRow struct {
	Band       int64    `json:"band"`
	Start      int64    `json:"start"`
	Alloc      int64    `json:"alloc_bytes"`
	Dead       int64    `json:"dead_bytes"`
	Live       int64    `json:"live_bytes"`
	LiveRatio  float64  `json:"live_ratio"`
	WriteBytes int64    `json:"write_bytes"`
	Heat       float64  `json:"heat"`
	Sets       []uint64 `json:"sets,omitempty"`
}

// spreadDead distributes an extent's dead bytes over the bands it
// overlaps, proportionally to the overlap, assigning the integer
// remainder to the extent's last band so totals stay exact. The
// offline analyzer reimplements the same rule; keep them in sync.
func spreadDead(stride, off, length, dead int64, add func(band, n int64)) {
	if dead <= 0 {
		return
	}
	end := off + length
	last := (end - 1) / stride
	var assigned int64
	for b := off / stride; b <= last; b++ {
		lo, hi := b*stride, (b+1)*stride
		if off > lo {
			lo = off
		}
		if end < hi {
			hi = end
		}
		n := dead * (hi - lo) / length
		if b == last {
			n = dead - assigned
		}
		assigned += n
		add(b, n)
	}
}

// rows builds the per-band view: every band with live allocation or
// residual heat, dead bytes spread from the extent map, owning sets
// attributed, heat decayed to now. Sorted hottest first, then by live
// ratio ascending (coldest, deadest bands last — the defragmentation
// victims read off the bottom).
func (s *surface) rows(now int64) []BandRow {
	if !s.enabled {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	deadBy := make(map[int64]int64)
	setsBy := make(map[int64]map[uint64]bool)
	for off, e := range s.exts {
		spreadDead(s.stride, off, e.len, e.dead, func(b, n int64) {
			deadBy[b] += n
		})
		if e.owner != 0 {
			s.eachBand(off, e.len, func(b, _ int64) {
				m := setsBy[b]
				if m == nil {
					m = make(map[uint64]bool)
					setsBy[b] = m
				}
				m[e.owner] = true
			})
		}
	}
	rows := make([]BandRow, 0, len(s.bands))
	for b, st := range s.bands {
		st.decay(now)
		if st.alloc == 0 && st.heat < 1 {
			continue
		}
		r := BandRow{
			Band:       b,
			Start:      b * s.stride,
			Alloc:      st.alloc,
			Dead:       deadBy[b],
			WriteBytes: st.writeBytes,
			Heat:       st.heat,
		}
		r.Live = r.Alloc - r.Dead
		if r.Alloc > 0 {
			r.LiveRatio = float64(r.Live) / float64(r.Alloc)
		}
		for id := range setsBy[b] {
			r.Sets = append(r.Sets, id)
		}
		sort.Slice(r.Sets, func(i, j int) bool { return r.Sets[i] < r.Sets[j] })
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Heat != rows[j].Heat {
			return rows[i].Heat > rows[j].Heat
		}
		if rows[i].LiveRatio != rows[j].LiveRatio {
			return rows[i].LiveRatio < rows[j].LiveRatio
		}
		return rows[i].Band < rows[j].Band
	})
	return rows
}

// maxHeat returns the hottest band's decayed heat.
func (s *surface) maxHeat(now int64) float64 {
	if !s.enabled {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var max float64
	for _, st := range s.bands {
		st.decay(now)
		if st.heat > max {
			max = st.heat
		}
	}
	return max
}

// rebuild reloads the surface from authoritative extent state (the
// backend file table, the manifest's set records and the vlog segment
// table) after recovery. Heat and write counters restart cold; alloc,
// dead and ownership are exactly what a fresh scan computes.
func (s *surface) rebuild(exts []SurfaceExtent) {
	if !s.enabled {
		return
	}
	s.reset()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range exts {
		se := &surfExtent{len: e.Len, owner: e.Set}
		s.exts[e.Off] = se
		s.phys += e.Len
		s.eachBand(e.Off, e.Len, func(b, overlap int64) {
			s.band(b).alloc += overlap
		})
		s.chargeLocked(se, e.Dead)
	}
}

// ---------------------------------------------------------------------------
// DB-level wiring: profiles, snapshots, rebuild, reconciliation.

// VlogSegmentRow is one value-log segment's occupancy in the
// /debug/bands payload — the per-segment accounting maybeVlogGC's
// dead-ratio victim selection reads, surfaced.
type VlogSegmentRow struct {
	Num       uint64  `json:"num"`
	Bytes     int64   `json:"bytes"`
	Dead      int64   `json:"dead_bytes"`
	Live      int64   `json:"live_bytes"`
	DeadRatio float64 `json:"dead_ratio"`
	Sealed    bool    `json:"sealed"`
}

// BandProfile is the /debug/bands payload: the fragmentation profile,
// every band sorted by heat then live ratio, and (in vlog mode) the
// per-segment occupancy with the GC threshold and its current victim.
type BandProfile struct {
	BandSize   int64             `json:"band_size"`
	Frag       dband.FragProfile `json:"frag"`
	Bands      []BandRow         `json:"bands"`
	Vlog       []VlogSegmentRow  `json:"vlog,omitempty"`
	VlogGCDead float64           `json:"vlog_gc_dead_ratio,omitempty"`
	VlogVictim uint64            `json:"vlog_gc_victim,omitempty"`
}

// SpaceProfile is the /debug/space payload: the continuous
// space-amplification counter and its inputs.
type SpaceProfile struct {
	PhysicalBytes      int64             `json:"physical_bytes"`
	LogicalLiveBytes   int64             `json:"logical_live_bytes"`
	TableBytes         int64             `json:"table_bytes"`
	VlogLiveBytes      int64             `json:"vlog_live_bytes,omitempty"`
	SurfaceDeadBytes   int64             `json:"surface_dead_bytes"`
	SpaceAmplification float64           `json:"space_amplification"`
	Frag               dband.FragProfile `json:"frag"`
}

// tableBytesLocked sums the current version's per-level table bytes —
// the logical footprint of the LSM tree. Caller holds d.mu.
func (d *DB) tableBytesLocked() int64 {
	var t int64
	cur := d.vs.Current()
	for l := 0; l < d.cfg.NumLevels; l++ {
		t += cur.LevelBytes(l)
	}
	return t
}

// spaceProfileLocked computes the space-amplification profile.
// Caller holds d.mu.
func (d *DB) spaceProfileLocked() SpaceProfile {
	var p SpaceProfile
	if !d.surface.enabled {
		return p
	}
	p.TableBytes = d.tableBytesLocked()
	if d.cfg.vlogEnabled() {
		live, _, _ := d.vlog.tab.Totals()
		p.VlogLiveBytes = live
	}
	p.LogicalLiveBytes = p.TableBytes + p.VlogLiveBytes
	p.PhysicalBytes, p.SurfaceDeadBytes = d.surface.totals()
	if p.LogicalLiveBytes > 0 {
		p.SpaceAmplification = float64(p.PhysicalBytes) / float64(p.LogicalLiveBytes)
	}
	p.Frag = d.dev.DBand.FragProfile()
	return p
}

// SpaceProfile reports the continuous space-amplification counter:
// physical bytes reserved on bands divided by logical live bytes
// (table bytes plus vlog live bytes). Zero-valued outside dynamic-band
// mode.
func (d *DB) SpaceProfile() SpaceProfile {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.spaceProfileLocked()
}

// BandProfile reports the per-band surface view. Zero-valued outside
// dynamic-band mode.
func (d *DB) BandProfile() BandProfile {
	d.mu.Lock()
	defer d.mu.Unlock()
	var p BandProfile
	if !d.surface.enabled {
		return p
	}
	p.BandSize = d.surface.stride
	p.Frag = d.dev.DBand.FragProfile()
	p.Bands = d.surface.rows(d.deviceNow())
	if d.cfg.vlogEnabled() {
		p.VlogGCDead = d.cfg.vlogGCDeadRatio()
		if vic, ok := d.vlog.tab.Victim(p.VlogGCDead); ok {
			p.VlogVictim = vic.Num
		}
		for _, seg := range d.vlog.tab.Segments() {
			p.Vlog = append(p.Vlog, VlogSegmentRow{
				Num:       seg.Num,
				Bytes:     seg.Bytes,
				Dead:      seg.Dead,
				Live:      seg.Live(),
				DeadRatio: seg.DeadRatio(),
				Sealed:    seg.Sealed,
			})
		}
	}
	return p
}

// SurfaceExtents returns the observatory's tracked extents sorted by
// offset — the baseline the offline analyzer replays allocator events
// from. Nil outside dynamic-band mode.
func (d *DB) SurfaceExtents() []SurfaceExtent {
	return d.surface.extents()
}

// surfaceClaim attributes a freshly registered set's group extent and
// journals the slack charge for the offline replay. Caller holds d.mu.
func (d *DB) surfaceClaim(off int64, owner uint64, dataBytes int64) {
	if !d.surface.enabled {
		return
	}
	if slack := d.surface.claim(off, owner, dataBytes); slack > 0 {
		d.journal.Record("band_dead", map[string]int64{"off": off, "bytes": slack})
	}
}

// surfaceChargeDead charges dead bytes against the extent at off and
// journals the charge for the offline replay. Caller holds d.mu.
func (d *DB) surfaceChargeDead(off, n int64) {
	if !d.surface.enabled {
		return
	}
	if charged := d.surface.chargeDead(off, n); charged > 0 {
		d.journal.Record("band_dead", map[string]int64{"off": off, "bytes": charged})
	}
}

// surfaceChargeInput marks a compaction input's bytes dead on the
// surface: a set member charges its slice of the group extent, an
// ungrouped file (an L0 table, a wholly consumed set already reduced
// to one file) charges its own extent. Called before the registry
// forgets the membership. Caller holds d.mu.
func (d *DB) surfaceChargeInput(num uint64) {
	if !d.surface.enabled {
		return
	}
	ext, err := d.backend.FileExtent(num)
	if err != nil {
		return
	}
	off := ext.Off
	if id := d.sets.setOf(num); id != 0 {
		if st := d.sets.byID[id]; st != nil {
			off = st.rec.Off
		}
	}
	d.surfaceChargeDead(off, ext.Len)
}

// surfaceRebuild reloads the observatory from the authoritative
// extent state at the end of an open: ungrouped backend files (tables,
// WAL, manifest, CURRENT, vlog segments), the manifest's set records
// (with dead bytes equal to the group length minus the live members'
// extents), and vlog per-segment dead bytes. Any observer noise from
// recovery-time allocator traffic is discarded. Called at the end of
// OpenDevice, before the DB is shared.
func (d *DB) surfaceRebuild() {
	if !d.surface.enabled {
		return
	}
	var exts []SurfaceExtent
	for _, fr := range d.backend.Files() {
		if fr.Grouped {
			continue
		}
		exts = append(exts, SurfaceExtent{Off: fr.Extent.Off, Len: fr.Extent.Len})
	}
	for id, st := range d.sets.byID {
		var liveBytes int64
		for num := range st.live {
			if ext, err := d.backend.FileExtent(num); err == nil {
				liveBytes += ext.Len
			}
		}
		exts = append(exts, SurfaceExtent{
			Off: st.rec.Off, Len: st.rec.Len, Dead: st.rec.Len - liveBytes, Set: id,
		})
	}
	d.surface.rebuild(exts)
	if d.cfg.vlogEnabled() {
		for _, seg := range d.vlog.tab.Segments() {
			if seg.Dead <= 0 {
				continue
			}
			if ext, err := d.backend.FileExtent(seg.Num); err == nil {
				d.surface.chargeDead(ext.Off, seg.Dead)
			}
		}
	}
}

// maybeSurfaceSnapshot journals a periodic observatory snapshot when
// the configured device-time interval has elapsed. The disabled path
// (no dynamic bands, or sampling off) is two field reads and must stay
// allocation-free — the write hot path calls this on every batch.
// Caller holds d.mu.
func (d *DB) maybeSurfaceSnapshot() {
	if !d.surface.enabled || d.surfaceSnapEvery <= 0 {
		return
	}
	now := d.deviceNow()
	if now-d.surfaceSnapAt < d.surfaceSnapEvery {
		return
	}
	d.surfaceSnapshotLocked(now)
}

// surfaceSnapshotLocked journals one space_snapshot event plus a
// band_snapshot event per allocated band. The offline analyzer replays
// the raw allocator events and checks these against its own
// recomputation. Caller holds d.mu.
func (d *DB) surfaceSnapshotLocked(now int64) {
	sp := d.spaceProfileLocked()
	d.journal.Record("space_snapshot", map[string]int64{
		"physical":         sp.PhysicalBytes,
		"logical":          sp.LogicalLiveBytes,
		"dead":             sp.SurfaceDeadBytes,
		"sa_milli":         int64(sp.SpaceAmplification * 1000),
		"frag_index_milli": int64(sp.Frag.Index * 1000),
		"holes":            int64(sp.Frag.Holes),
		"largest_free":     sp.Frag.LargestFree,
		"frontier":         sp.Frag.Frontier,
	})
	for _, r := range d.surface.rows(now) {
		if r.Alloc == 0 {
			continue
		}
		d.journal.Record("band_snapshot", map[string]int64{
			"band":        r.Band,
			"alloc":       r.Alloc,
			"dead":        r.Dead,
			"live":        r.Live,
			"write_bytes": r.WriteBytes,
			"heat_milli":  int64(r.Heat * 1000),
		})
	}
	d.surfaceSnapAt = now
}

// SurfaceSnapshot journals an observatory snapshot immediately,
// regardless of the sampling interval. The trace collector calls it so
// a dump's event window always ends with a snapshot for the analyzer
// to reconcile against. No-op outside dynamic-band mode.
func (d *DB) SurfaceSnapshot() {
	if !d.surface.enabled {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.surfaceSnapshotLocked(d.deviceNow())
}

// VerifySurface recomputes the per-band accounting from the extent
// table (a fresh scan over backend files, set records and pending
// reclaims) and fails if the incrementally maintained observatory
// disagrees anywhere: extent-for-extent, per-band byte-for-byte, and
// on the dead-bytes bounds. The chaos harness calls it after every
// recovery; VerifyIntegrity includes it.
func (d *DB) VerifySurface() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.verifySurfaceLocked()
}
