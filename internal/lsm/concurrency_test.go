package lsm

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersAndWriter exercises the engine's locking under
// parallel readers, a writer, iterator users and snapshot takers.
// Run with -race to check the synchronization.
func TestConcurrentReadersAndWriter(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Seed some data.
	for i := 0; i < 1000; i++ {
		d.Put([]byte(fmt.Sprintf("c%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// One writer pushing enough to trigger flushes and compactions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3000; i++ {
			k := fmt.Sprintf("c%05d", i%2000)
			if err := d.Put([]byte(k), []byte(fmt.Sprintf("w%d", i))); err != nil {
				errs <- err
				return
			}
			if i%10 == 3 {
				if err := d.Delete([]byte(fmt.Sprintf("c%05d", (i*7)%2000))); err != nil {
					errs <- err
					return
				}
			}
		}
	}()

	// Point readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("c%05d", (i*31+seed)%2000)
				if _, err := d.Get([]byte(k)); err != nil && err != ErrNotFound {
					errs <- err
					return
				}
			}
		}(r)
	}

	// Scanners with snapshots.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := d.Scan([]byte("c"), 50); err != nil {
					errs <- err
					return
				}
				snap := d.NewSnapshot()
				if _, err := d.GetAt([]byte("c00001"), snap); err != nil && err != ErrNotFound {
					errs <- err
					snap.Release()
					return
				}
				snap.Release()
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := d.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestApproximateSize(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	loadRandom(t, d, 4000, 77)
	d.FlushMemtable()

	whole := d.ApproximateSize(nil, nil)
	if whole <= 0 {
		t.Fatal("whole-range size is zero after load")
	}
	half := d.ApproximateSize([]byte("key0000000"), []byte("key0002000"))
	if half <= 0 || half >= whole {
		t.Errorf("half range %d not within (0, %d)", half, whole)
	}
	empty := d.ApproximateSize([]byte("zzz"), []byte("zzzz"))
	if empty != 0 {
		t.Errorf("empty range reported %d bytes", empty)
	}
	// Consistency: the two halves roughly partition the whole.
	rest := d.ApproximateSize([]byte("key0002000"), nil)
	sum := half + rest
	if sum < whole*8/10 || sum > whole*12/10 {
		t.Errorf("halves %d + %d = %d far from whole %d", half, rest, sum, whole)
	}
}
