package lsm

import (
	"time"

	"sealdb/internal/smr"
	"sealdb/internal/storage"
)

// CompactionInfo records one compaction (or flush) for the paper's
// Figure 10 analysis.
type CompactionInfo struct {
	ID        int
	FromLevel int
	ToLevel   int
	Inputs0   int // files taken from FromLevel
	Inputs1   int // files taken from ToLevel (the set)
	// InputBytes and OutputBytes are the file bytes read and written.
	InputBytes  int64
	OutputBytes int64
	OutputFiles int
	// Latency is the simulated device time the compaction consumed.
	Latency time.Duration
	// HostBytes and DeviceBytes are the host-issued and physical
	// device write bytes this compaction (or flush) caused, captured
	// as exact deltas around its execution (compactions serialize
	// under the DB lock). DeviceBytes/HostBytes is the compaction's
	// own auxiliary write amplification.
	HostBytes   int64
	DeviceBytes int64
	// TrivialMove marks a compaction that moved a file without I/O.
	TrivialMove bool
	// Flush marks a memtable flush rather than a merge.
	Flush bool
	// OutputPlacements records where each output SSTable landed on
	// the device, in write order — the data the paper's Figures 2,
	// 3(a) and 11 are built from (it traced SSTable physical
	// addresses per compaction).
	OutputPlacements []storage.Extent
}

// Stats aggregates engine activity. All byte counts are logical
// (what the engine asked the device to do); device-level counts come
// from the drive.
type Stats struct {
	UserBytes  int64 // key+value payload accepted from the user
	UserWrites int64 // mutations accepted

	FlushCount int64
	FlushBytes int64 // L0 table bytes written by flushes

	CompactionCount      int64
	CompactionReadBytes  int64
	CompactionWriteBytes int64
	TrivialMoves         int64

	Gets    int64
	GetHits int64

	// GCMoves and GCBytes count DefragmentBands set relocations.
	GCMoves int64
	GCBytes int64

	// VlogAppendBytes counts value-log record bytes written on behalf
	// of user batches; VlogGCRuns/VlogGCBytes count collection passes
	// and the live record bytes they rewrote into fresh segments.
	VlogAppendBytes int64
	VlogGCRuns      int64
	VlogGCBytes     int64

	Compactions []CompactionInfo
}

// Amplification is the paper's Table I, measured: WA from the
// LSM-tree, AWA from the SMR drive, and their product MWA.
type Amplification struct {
	// UserBytes is the payload written by the user.
	UserBytes int64
	// StoreBytes is what the store wrote logically: flushes plus
	// compaction outputs, plus value-log appends and GC rewrites
	// when key–value separation is on (the numerator of the paper's
	// WA).
	StoreBytes int64
	// HostBytes is everything the host issued to the device,
	// including WAL and MANIFEST traffic.
	HostBytes int64
	// DeviceBytes is what the device physically wrote, including
	// read-modify-write traffic.
	DeviceBytes int64

	WA  float64 // StoreBytes / UserBytes
	AWA float64 // DeviceBytes / HostBytes (1.0 when no RMW happens)
	MWA float64 // WA * AWA
}

// Amplification computes the current amplification figures.
func (d *DB) Amplification() Amplification {
	d.mu.Lock()
	st := d.stats
	d.mu.Unlock()
	a := Amplification{
		UserBytes:   st.UserBytes,
		StoreBytes:  st.FlushBytes + st.CompactionWriteBytes + st.VlogAppendBytes + st.VlogGCBytes,
		HostBytes:   d.drive.HostBytesWritten(),
		DeviceBytes: d.disk.Stats().BytesWritten,
	}
	if a.UserBytes > 0 {
		a.WA = float64(a.StoreBytes) / float64(a.UserBytes)
	}
	a.AWA = smr.AWA(d.drive)
	a.MWA = a.WA * a.AWA
	return a
}

// Stats returns a snapshot of the engine counters.
func (d *DB) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.stats
	st.Compactions = append([]CompactionInfo(nil), d.stats.Compactions...)
	return st
}
