package lsm

import (
	"fmt"
	"testing"
)

func TestLevelProfile(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	loadRandom(t, d, 5000, 3)
	profile := d.LevelProfile()
	if len(profile) != d.cfg.NumLevels {
		t.Fatalf("profile has %d levels", len(profile))
	}
	var files int
	for _, li := range profile {
		files += li.Files
		if li.Files > 0 && li.Bytes == 0 {
			t.Errorf("L%d has %d files but zero bytes", li.Level, li.Files)
		}
		if li.Level > 0 && li.Level < d.cfg.NumLevels-1 && li.Target == 0 {
			t.Errorf("L%d has no target", li.Level)
		}
	}
	if files == 0 {
		t.Error("no files in profile after load")
	}
}

func TestSetProfile(t *testing.T) {
	d, _ := Open(tinyConfig(ModeSEALDB))
	defer d.Close()
	loadRandom(t, d, 8000, 5)
	sp := d.SetProfile()
	if sp.LiveSets == 0 || sp.LiveMembers == 0 {
		t.Fatalf("no sets after deep load: %+v", sp)
	}
	if sp.LiveMembers > sp.TotalMembers {
		t.Errorf("live %d > total %d", sp.LiveMembers, sp.TotalMembers)
	}
	if sp.InvalidMembers != sp.TotalMembers-sp.LiveMembers {
		t.Errorf("invalid accounting wrong: %+v", sp)
	}
}

func TestCompactRange(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			d, err := Open(tinyConfig(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			ref := loadRandom(t, d, 4000, 7)
			if err := d.CompactRange(nil, nil); err != nil {
				t.Fatal(err)
			}
			// Everything readable, L0 empty (all pushed down), and for
			// leveled modes nothing in shallow levels above base data.
			verifyAll(t, d, ref)
			if n := d.vs.Current().NumFiles(0); n != 0 {
				t.Errorf("L0 still holds %d files after CompactRange", n)
			}
			if err := d.VerifyIntegrity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCompactRangePartial(t *testing.T) {
	d, _ := Open(tinyConfig(ModeSEALDB))
	defer d.Close()
	ref := loadRandom(t, d, 4000, 9)
	// Compact only a sub-range; the store must stay correct.
	if err := d.CompactRange([]byte("key0001000"), []byte("key0002000")); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, d, ref)
}

func TestVerifyIntegrityAllModes(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			d, err := Open(tinyConfig(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			loadRandom(t, d, 5000, 11)
			if err := d.VerifyIntegrity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVerifyIntegrityAfterRecovery(t *testing.T) {
	cfg := tinyConfig(ModeSEALDB)
	d, _ := Open(cfg)
	loadRandom(t, d, 5000, 13)
	dev := d.Device()
	d.Close()
	d2, err := OpenDevice(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if err := d2.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestDefragmentBands(t *testing.T) {
	cfg := tinyConfig(ModeSEALDB)
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Heavy churn produces dead sets and fragments.
	ref := loadRandom(t, d, 12000, 17)

	before := d.Device().DBand.FragmentBytes(cfg.SSTableSize + cfg.GuardSize)
	res, err := d.DefragmentBands(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FragmentsBefore != before {
		t.Errorf("FragmentsBefore %d != measured %d", res.FragmentsBefore, before)
	}
	if res.SetsMoved > 0 {
		if res.BytesMoved == 0 {
			t.Error("sets moved but no bytes accounted")
		}
		if res.FragmentsAfter >= res.FragmentsBefore {
			t.Errorf("fragments did not shrink: %d -> %d", res.FragmentsBefore, res.FragmentsAfter)
		}
	}
	// Correctness after relocation: all data readable, integrity
	// holds, and the drive never saw an illegal write (AWA still 1).
	verifyAll(t, d, ref)
	if err := d.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	if amp := d.Amplification(); amp.AWA != 1.0 {
		t.Errorf("AWA %v after GC", amp.AWA)
	}
	if st := d.Stats(); st.GCMoves != int64(res.SetsMoved) {
		t.Errorf("stats GCMoves %d != result %d", st.GCMoves, res.SetsMoved)
	}

	// The store keeps working and recovering after a GC pass.
	loadRandomInto(t, d, 2000, 18, ref)
	verifyAll(t, d, ref)
	dev := d.Device()
	d.Close()
	d2, err := OpenDevice(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	verifyAll(t, d2, ref)
	if err := d2.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestDefragmentBandsWrongMode(t *testing.T) {
	d, _ := Open(tinyConfig(ModeLevelDB))
	defer d.Close()
	if _, err := d.DefragmentBands(0); err == nil {
		t.Error("DefragmentBands accepted on a fixed-band store")
	}
}

func TestDefragmentBandsMaxMoves(t *testing.T) {
	d, _ := Open(tinyConfig(ModeSEALDB))
	defer d.Close()
	loadRandom(t, d, 12000, 19)
	res, err := d.DefragmentBands(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.SetsMoved > 1 {
		t.Errorf("maxMoves=1 but moved %d sets", res.SetsMoved)
	}
}

func TestCompactRangeOnEmptyStore(t *testing.T) {
	d, _ := Open(tinyConfig(ModeSEALDB))
	defer d.Close()
	if err := d.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func ExampleDB_LevelProfile() {
	d, _ := Open(DefaultConfig(ModeSEALDB))
	defer d.Close()
	for i := 0; i < 100; i++ {
		d.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	p := d.LevelProfile()
	fmt.Println(len(p), "levels")
	// Output: 7 levels
}

func TestTableCacheBounded(t *testing.T) {
	cfg := tinyConfig(ModeSEALDB)
	cfg.MaxOpenTables = 8
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ref := loadRandom(t, d, 6000, 303)
	// Reads across the whole keyspace churn the table cache.
	verifyAll(t, d, ref)
	if n := len(d.tables); n > 8+1 {
		t.Errorf("table cache holds %d readers, bound 8", n)
	}
	if len(d.tableLRU) != len(d.tables) {
		t.Errorf("LRU list %d entries vs %d tables", len(d.tableLRU), len(d.tables))
	}
	// Everything still readable after heavy eviction (readers reopen).
	verifyAll(t, d, ref)
	if err := d.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}
