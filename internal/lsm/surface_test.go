// Storage-surface observatory tests: the incremental band accounting
// must agree with a fresh extent-table scan at any point in a live
// workload, survive close/reopen (rebuild-on-recovery), emit periodic
// snapshot events on the device clock, fold vlog segment occupancy
// into /debug/bands, and cost nothing on the write hot path while
// sampling is disabled.
package lsm

import (
	"fmt"
	"testing"
	"time"

	"sealdb/internal/invariant"
)

// churnSurface drives n seeded puts (values ~200 B) through the DB,
// overwriting every third key to create dead data, so flushes and
// compactions exercise every surface path: frontier appends, free-list
// inserts, set claims, dead charges, frees.
func churnSurface(t *testing.T, d *DB, n int) {
	t.Helper()
	val := make([]byte, 200)
	for i := 0; i < n; i++ {
		k := i
		if i%3 == 0 {
			k = i / 2 // overwrite an earlier key
		}
		key := fmt.Sprintf("key-%06d", k)
		for j := range val {
			val[j] = byte(i + j)
		}
		if err := d.Put([]byte(key), val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
}

// TestSurfaceAccountingMatchesScanMidRun checks the tentpole's core
// contract on a live store: after real flush/compaction traffic the
// incrementally maintained per-band counters equal a fresh scan over
// the extent table, and the profile totals are internally consistent.
func TestSurfaceAccountingMatchesScanMidRun(t *testing.T) {
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for round := 0; round < 4; round++ {
		churnSurface(t, d, 800)
		if err := d.VerifySurface(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if err := d.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.VerifySurface(); err != nil {
		t.Fatalf("after CompactRange: %v", err)
	}

	sp := d.SpaceProfile()
	if sp.PhysicalBytes <= 0 || sp.TableBytes <= 0 {
		t.Fatalf("degenerate space profile: %+v", sp)
	}
	if sp.SpaceAmplification < 1 {
		t.Fatalf("SA %.3f < 1: physical bytes cannot undercut live bytes", sp.SpaceAmplification)
	}
	bp := d.BandProfile()
	if len(bp.Bands) == 0 {
		t.Fatal("no bands tracked after a compacting workload")
	}
	var alloc, dead int64
	for i, r := range bp.Bands {
		if r.Live != r.Alloc-r.Dead {
			t.Fatalf("band %d: live %d != alloc %d - dead %d", r.Band, r.Live, r.Alloc, r.Dead)
		}
		if r.Dead < 0 || r.Dead > r.Alloc {
			t.Fatalf("band %d: dead %d outside [0,%d]", r.Band, r.Dead, r.Alloc)
		}
		if i > 0 && bp.Bands[i-1].Heat < r.Heat {
			t.Fatalf("bands not sorted by heat: row %d (%.0f) after %.0f", i, r.Heat, bp.Bands[i-1].Heat)
		}
		alloc += r.Alloc
		dead += r.Dead
	}
	if alloc != sp.PhysicalBytes {
		t.Fatalf("band alloc sum %d != physical %d", alloc, sp.PhysicalBytes)
	}
	if dead != sp.SurfaceDeadBytes {
		t.Fatalf("band dead sum %d != surface dead %d", dead, sp.SurfaceDeadBytes)
	}
}

// TestSurfaceRebuildEqualsFreshScan is the rebuild-on-recovery
// contract: after close and reopen on the same device, the rebuilt
// accounting equals a freshly computed scan, and stays consistent
// through further traffic.
func TestSurfaceRebuildEqualsFreshScan(t *testing.T) {
	cfg := tinyConfig(ModeSEALDB)
	dev := NewDevice(cfg)
	d, err := OpenDevice(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	churnSurface(t, d, 2500)
	if err := d.VerifySurface(); err != nil {
		t.Fatalf("before close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDevice(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if len(d2.SurfaceExtents()) == 0 {
		t.Fatal("rebuild tracked no extents on a populated device")
	}
	if err := d2.VerifySurface(); err != nil {
		t.Fatalf("after reopen: %v", err)
	}
	churnSurface(t, d2, 800)
	if err := d2.VerifySurface(); err != nil {
		t.Fatalf("after post-reopen writes: %v", err)
	}
}

// TestSurfaceSnapshotEvents arms periodic sampling on a tiny
// device-time interval and checks the journal carries both snapshot
// event kinds, with the band rows summing to the space row.
func TestSurfaceSnapshotEvents(t *testing.T) {
	cfg := tinyConfig(ModeSEALDB)
	cfg.SurfaceSnapshotInterval = time.Millisecond // device time
	cfg.JournalCapacity = 1 << 14
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	churnSurface(t, d, 1500)
	d.SurfaceSnapshot()

	var spaces, bands int
	var lastPhys, bandSum int64
	for _, e := range d.Events() {
		switch e.Type {
		case "space_snapshot":
			spaces++
			lastPhys = e.Fields["physical"]
			bandSum = 0
		case "band_snapshot":
			bands++
			bandSum += e.Fields["alloc"]
		}
	}
	if spaces < 2 {
		t.Fatalf("want >= 2 space_snapshot events (periodic + on demand), got %d", spaces)
	}
	if bands == 0 {
		t.Fatal("no band_snapshot events")
	}
	if bandSum != lastPhys {
		t.Fatalf("final snapshot: band alloc sum %d != physical %d", bandSum, lastPhys)
	}
}

// TestSurfaceVlogOccupancy checks the satellite fix: the per-segment
// occupancy maybeVlogGC's victim selection reads is exported through
// the /debug/bands payload, threshold included.
func TestSurfaceVlogOccupancy(t *testing.T) {
	cfg := tinyConfig(ModeSEALDB)
	cfg.ValueThreshold = 64
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	churnSurface(t, d, 1200)

	bp := d.BandProfile()
	if len(bp.Vlog) == 0 {
		t.Fatal("no vlog segment rows in the band profile")
	}
	if bp.VlogGCDead <= 0 {
		t.Fatalf("vlog GC threshold %v not exported", bp.VlogGCDead)
	}
	for _, seg := range bp.Vlog {
		if seg.Live != seg.Bytes-seg.Dead {
			t.Fatalf("segment %d: live %d != bytes %d - dead %d", seg.Num, seg.Live, seg.Bytes, seg.Dead)
		}
	}
	if err := d.VerifySurface(); err != nil {
		t.Fatal(err)
	}
	sp := d.SpaceProfile()
	if sp.VlogLiveBytes <= 0 {
		t.Fatalf("vlog live bytes missing from space profile: %+v", sp)
	}
}

// TestSurfaceSnapshotDisabledAllocs is the hot-path guard: with
// periodic sampling disabled (the default), the per-batch snapshot
// check is two field reads and must not allocate.
func TestSurfaceSnapshotDisabledAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	if invariant.Enabled {
		t.Skip("lock-order watchdog allocates on profiled acquisitions")
	}
	d, err := Open(tinyConfig(ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.surfaceSnapEvery != 0 {
		t.Fatal("sampling unexpectedly enabled")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := testing.AllocsPerRun(1000, func() {
		d.maybeSurfaceSnapshot()
	}); n > 0 {
		t.Errorf("disabled-sampling snapshot check allocates %.1f times per call, want 0", n)
	}
}
