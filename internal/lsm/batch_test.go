package lsm

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"sealdb/internal/kv"
)

func TestBatchEncodeDecodeRoundTrip(t *testing.T) {
	type op struct {
		Key, Val []byte
		Del      bool
	}
	f := func(ops []op) bool {
		b := NewBatch()
		for _, o := range ops {
			if o.Del {
				b.Delete(o.Key)
			} else {
				b.Put(o.Key, o.Val)
			}
		}
		b.setSeq(1000)
		var got []op
		last, n, err := decodeBatch(b.rep, func(seq kv.SeqNum, kind kv.Kind, key, value []byte) error {
			if seq != 1000+kv.SeqNum(len(got)) {
				t.Errorf("seq %d at index %d", seq, len(got))
			}
			got = append(got, op{
				Key: append([]byte(nil), key...),
				Val: append([]byte(nil), value...),
				Del: kind == kv.KindDelete,
			})
			return nil
		})
		if err != nil || n != len(ops) {
			return false
		}
		if len(ops) > 0 && last != 1000+kv.SeqNum(len(ops))-1 {
			return false
		}
		for i := range ops {
			if got[i].Del != ops[i].Del || !bytes.Equal(got[i].Key, ops[i].Key) {
				return false
			}
			if !ops[i].Del {
				want := ops[i].Val
				if want == nil {
					want = []byte{}
				}
				gotv := got[i].Val
				if gotv == nil {
					gotv = []byte{}
				}
				if !bytes.Equal(gotv, want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBatchDecodeRejectsCorruption(t *testing.T) {
	b := NewBatch()
	b.Put([]byte("key"), []byte("value"))
	b.Delete([]byte("other"))
	b.setSeq(5)
	rep := append([]byte(nil), b.rep...)

	nop := func(kv.SeqNum, kv.Kind, []byte, []byte) error { return nil }

	// Too short.
	if _, _, err := decodeBatch(rep[:batchHeaderLen-1], nop); err == nil {
		t.Error("short batch accepted")
	}
	// Truncated entry.
	if _, _, err := decodeBatch(rep[:len(rep)-3], nop); err == nil {
		t.Error("truncated batch accepted")
	}
	// Unknown kind byte.
	bad := append([]byte(nil), rep...)
	bad[batchHeaderLen] = 99
	if _, _, err := decodeBatch(bad, nop); err == nil {
		t.Error("unknown kind accepted")
	}
	// Trailing garbage.
	if _, _, err := decodeBatch(append(rep, 0xde, 0xad), nop); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Clean decode still works.
	if _, n, err := decodeBatch(rep, nop); err != nil || n != 2 {
		t.Errorf("clean decode: n=%d err=%v", n, err)
	}
}

func TestBatchReset(t *testing.T) {
	b := NewBatch()
	b.Put([]byte("a"), []byte("1"))
	b.Delete([]byte("b"))
	if b.Len() != 2 || b.bytes == 0 {
		t.Fatalf("pre-reset state: len=%d bytes=%d", b.Len(), b.bytes)
	}
	b.Reset()
	if b.Len() != 0 || b.bytes != 0 || b.Size() != batchHeaderLen {
		t.Errorf("reset left len=%d bytes=%d size=%d", b.Len(), b.bytes, b.Size())
	}
	// Reusable after reset.
	b.Put([]byte("c"), []byte("2"))
	b.setSeq(1)
	count := 0
	decodeBatch(b.rep, func(kv.SeqNum, kv.Kind, []byte, []byte) error {
		count++
		return nil
	})
	if count != 1 {
		t.Errorf("decoded %d entries after reuse", count)
	}
}

func TestBatchResetKeepsCapacity(t *testing.T) {
	// The server's batch pool leans on Reset keeping the backing
	// buffer: a pooled batch must not reallocate when refilled to its
	// previous size.
	b := NewBatch()
	val := make([]byte, 1024)
	for i := 0; i < 64; i++ {
		b.Put([]byte(fmt.Sprintf("key%04d", i)), val)
	}
	grown := b.Cap()
	if grown <= batchHeaderLen {
		t.Fatalf("Cap() = %d, want growth past the header", grown)
	}
	b.Reset()
	if b.Cap() != grown {
		t.Fatalf("Reset changed capacity: %d -> %d", grown, b.Cap())
	}
	for i := 0; i < 64; i++ {
		b.Put([]byte(fmt.Sprintf("key%04d", i)), val)
	}
	if b.Cap() != grown {
		t.Fatalf("refill to the same size reallocated: %d -> %d", grown, b.Cap())
	}
}

func TestWALRotationUnderLargeBatches(t *testing.T) {
	// Batches near and beyond the WAL extent size must be handled by
	// early rotation and oversized log extents.
	cfg := tinyConfig(ModeSEALDB)
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	big := bytes.Repeat([]byte("x"), int(cfg.MemtableSize)) // larger than a memtable
	for i := 0; i < 5; i++ {
		b := NewBatch()
		b.Put([]byte{byte('a' + i)}, big)
		if err := d.Apply(b); err != nil {
			t.Fatalf("big batch %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		v, err := d.Get([]byte{byte('a' + i)})
		if err != nil || !bytes.Equal(v, big) {
			t.Fatalf("big value %d lost: err=%v len=%d", i, err, len(v))
		}
	}
	// And they survive recovery.
	dev := d.Device()
	d.Close()
	d2, err := OpenDevice(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for i := 0; i < 5; i++ {
		if v, err := d2.Get([]byte{byte('a' + i)}); err != nil || len(v) != len(big) {
			t.Fatalf("big value %d lost after recovery: err=%v len=%d", i, err, len(v))
		}
	}
}
