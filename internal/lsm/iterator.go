package lsm

import (
	"sealdb/internal/kv"
	"sealdb/internal/version"
)

// mergingIter merges child iterators in internal-key order. With the
// engine's fan-ins (a handful of memtables and tables) a linear
// minimum scan is simpler than a heap and fast enough.
type mergingIter struct {
	children []kv.Iterator
	cur      int // index of the child holding the current key; -1 if none
	dir      int
	err      error
}

func newMergingIter(children ...kv.Iterator) *mergingIter {
	return &mergingIter{children: children, cur: -1}
}

// direction of the last movement; children are positioned at their
// next candidate in that direction.
const (
	dirForward = iota
	dirBackward
)

func (m *mergingIter) findSmallest() {
	m.cur = -1
	for i, c := range m.children {
		if err := c.Error(); err != nil {
			m.err = err
			m.cur = -1
			return
		}
		if !c.Valid() {
			continue
		}
		if m.cur < 0 || kv.CompareInternal(c.Key(), m.children[m.cur].Key()) < 0 {
			m.cur = i
		}
	}
}

func (m *mergingIter) findLargest() {
	m.cur = -1
	for i, c := range m.children {
		if err := c.Error(); err != nil {
			m.err = err
			m.cur = -1
			return
		}
		if !c.Valid() {
			continue
		}
		if m.cur < 0 || kv.CompareInternal(c.Key(), m.children[m.cur].Key()) > 0 {
			m.cur = i
		}
	}
}

func (m *mergingIter) Valid() bool { return m.err == nil && m.cur >= 0 }
func (m *mergingIter) Error() error {
	if m.err != nil {
		return m.err
	}
	for _, c := range m.children {
		if err := c.Error(); err != nil {
			return err
		}
	}
	return nil
}

func (m *mergingIter) SeekToFirst() {
	for _, c := range m.children {
		c.SeekToFirst()
	}
	m.dir = dirForward
	m.findSmallest()
}

func (m *mergingIter) SeekToLast() {
	for _, c := range m.children {
		c.SeekToLast()
	}
	m.dir = dirBackward
	m.findLargest()
}

func (m *mergingIter) Seek(target kv.InternalKey) {
	for _, c := range m.children {
		c.Seek(target)
	}
	m.dir = dirForward
	m.findSmallest()
}

func (m *mergingIter) Next() {
	if m.dir != dirForward {
		// The other children sit at their predecessor candidates;
		// re-point them past the current key (LevelDB's direction
		// switch).
		key := m.children[m.cur].Key().Clone()
		for i, c := range m.children {
			if i == m.cur {
				continue
			}
			c.Seek(key)
			if c.Valid() && kv.CompareInternal(c.Key(), key) == 0 {
				c.Next()
			}
		}
		m.dir = dirForward
	}
	m.children[m.cur].Next()
	m.findSmallest()
}

func (m *mergingIter) Prev() {
	if m.dir != dirBackward {
		// The other children sit at their successor candidates; move
		// each to the entry strictly before the current key.
		key := m.children[m.cur].Key().Clone()
		for i, c := range m.children {
			if i == m.cur {
				continue
			}
			c.Seek(key)
			if c.Valid() {
				c.Prev()
			} else {
				c.SeekToLast()
			}
		}
		m.dir = dirBackward
	}
	m.children[m.cur].Prev()
	m.findLargest()
}

func (m *mergingIter) Key() kv.InternalKey { return m.children[m.cur].Key() }
func (m *mergingIter) Value() []byte       { return m.children[m.cur].Value() }

var _ kv.Iterator = (*mergingIter)(nil)

// concatIter iterates the files of a sorted, disjoint level in key
// order, opening one table at a time.
type concatIter struct {
	d     *DB
	files []*version.FileMeta
	idx   int
	cur   kv.Iterator
	err   error
}

func (d *DB) newConcatIter(files []*version.FileMeta) *concatIter {
	return &concatIter{d: d, files: files, idx: -1}
}

func (c *concatIter) openIdx() {
	c.cur = nil
	if c.idx < 0 || c.idx >= len(c.files) {
		return
	}
	t, err := c.d.openTable(c.files[c.idx])
	if err != nil {
		c.err = err
		return
	}
	c.cur = t.NewIterator()
}

func (c *concatIter) Valid() bool { return c.err == nil && c.cur != nil && c.cur.Valid() }

func (c *concatIter) Error() error {
	if c.err != nil {
		return c.err
	}
	if c.cur != nil {
		return c.cur.Error()
	}
	return nil
}

func (c *concatIter) SeekToFirst() {
	c.idx = 0
	c.openIdx()
	if c.cur != nil {
		c.cur.SeekToFirst()
	}
	c.skipExhausted()
}

func (c *concatIter) Seek(target kv.InternalKey) {
	// Binary search could be used; levels hold few files per query in
	// the experiments, so a linear bound check keeps this simple.
	c.idx = len(c.files)
	for i, f := range c.files {
		if kv.CompareInternal(target, f.Largest) <= 0 {
			c.idx = i
			break
		}
	}
	c.openIdx()
	if c.cur != nil {
		c.cur.Seek(target)
	}
	c.skipExhausted()
}

func (c *concatIter) SeekToLast() {
	c.idx = len(c.files) - 1
	c.openIdx()
	if c.cur != nil {
		c.cur.SeekToLast()
	}
	c.skipExhaustedBackward()
}

func (c *concatIter) Next() {
	c.cur.Next()
	c.skipExhausted()
}

func (c *concatIter) Prev() {
	c.cur.Prev()
	c.skipExhaustedBackward()
}

func (c *concatIter) skipExhausted() {
	for c.err == nil && (c.cur == nil || !c.cur.Valid()) {
		if c.cur != nil && c.cur.Error() != nil {
			c.err = c.cur.Error()
			return
		}
		c.idx++
		if c.idx >= len(c.files) {
			c.cur = nil
			return
		}
		c.openIdx()
		if c.cur != nil {
			c.cur.SeekToFirst()
		}
	}
}

func (c *concatIter) skipExhaustedBackward() {
	for c.err == nil && (c.cur == nil || !c.cur.Valid()) {
		if c.cur != nil && c.cur.Error() != nil {
			c.err = c.cur.Error()
			return
		}
		c.idx--
		if c.idx < 0 {
			c.cur = nil
			return
		}
		c.openIdx()
		if c.cur != nil {
			c.cur.SeekToLast()
		}
	}
}

func (c *concatIter) Key() kv.InternalKey { return c.cur.Key() }
func (c *concatIter) Value() []byte       { return c.cur.Value() }

var _ kv.Iterator = (*concatIter)(nil)

// Iterator is the user-facing forward iterator: it surfaces the
// newest visible version of each live user key at its snapshot.
type Iterator struct {
	d     *DB
	m     *mergingIter
	seq   kv.SeqNum
	epoch uint64 // reclamation epoch pinned until Close (see pins.go)
	key   []byte
	val   []byte
	ok    bool
	err   error
	done  bool      // Close ran: the pin is released
	snap  *Snapshot // released on Close when the iterator owns it
}

// NewIterator returns an iterator over the current state. The
// iterator holds an implicit snapshot until Close.
func (d *DB) NewIterator() *Iterator {
	snap := d.NewSnapshot()
	it := d.NewSnapshotIterator(snap)
	it.snap = snap
	return it
}

// NewSnapshotIterator iterates the state as of snap. The caller keeps
// ownership of the snapshot.
func (d *DB) NewSnapshotIterator(snap *Snapshot) *Iterator {
	d.mu.Lock()
	defer d.mu.Unlock()
	children := []kv.Iterator{d.mem.NewIterator()}
	v := d.vs.Current()
	for _, f := range v.Files[0] {
		children = append(children, &lazyTableIter{d: d, f: f})
	}
	for level := 1; level < d.cfg.NumLevels; level++ {
		if len(v.Files[level]) == 0 {
			continue
		}
		if d.cfg.sortedLevel(level) {
			children = append(children, d.newConcatIter(v.Files[level]))
		} else {
			for _, f := range v.Files[level] {
				children = append(children, &lazyTableIter{d: d, f: f})
			}
		}
	}
	return &Iterator{d: d, m: newMergingIter(children...), seq: snap.seq, epoch: d.pinIter()}
}

// lazyTableIter defers opening a table until first use.
type lazyTableIter struct {
	d   *DB
	f   *version.FileMeta
	it  kv.Iterator
	err error
}

func (l *lazyTableIter) open() bool {
	if l.err != nil {
		return false
	}
	if l.it == nil {
		t, err := l.d.openTable(l.f)
		if err != nil {
			l.err = err
			return false
		}
		l.it = t.NewIterator()
	}
	return true
}

func (l *lazyTableIter) Valid() bool { return l.err == nil && l.it != nil && l.it.Valid() }
func (l *lazyTableIter) Error() error {
	if l.err != nil {
		return l.err
	}
	if l.it != nil {
		return l.it.Error()
	}
	return nil
}
func (l *lazyTableIter) SeekToFirst() {
	if l.open() {
		l.it.SeekToFirst()
	}
}
func (l *lazyTableIter) Seek(t kv.InternalKey) {
	if l.open() {
		l.it.Seek(t)
	}
}
func (l *lazyTableIter) SeekToLast() {
	if l.open() {
		l.it.SeekToLast()
	}
}
func (l *lazyTableIter) Next()               { l.it.Next() }
func (l *lazyTableIter) Prev()               { l.it.Prev() }
func (l *lazyTableIter) Key() kv.InternalKey { return l.it.Key() }
func (l *lazyTableIter) Value() []byte       { return l.it.Value() }

// SeekToFirst positions at the first live user key.
func (it *Iterator) SeekToFirst() {
	it.d.mu.Lock()
	defer it.d.mu.Unlock()
	it.m.SeekToFirst()
	it.settle(nil)
}

// Seek positions at the first live user key >= target.
func (it *Iterator) Seek(target []byte) {
	it.d.mu.Lock()
	defer it.d.mu.Unlock()
	it.m.Seek(kv.MakeSearchKey(nil, target, it.seq))
	it.settle(nil)
}

// SeekToLast positions at the largest live user key.
func (it *Iterator) SeekToLast() {
	it.d.mu.Lock()
	defer it.d.mu.Unlock()
	it.m.SeekToLast()
	it.settleBackward(nil)
}

// Next advances to the next live user key.
func (it *Iterator) Next() {
	it.d.mu.Lock()
	defer it.d.mu.Unlock()
	if !it.ok {
		return
	}
	if !it.m.Valid() {
		// A preceding backward pass exhausted the merged stream while
		// resolving the current key's run; recover by seeking to the
		// last possible entry of the current user key (everything at
		// or before it is skipped by settle's lower bound).
		it.m.Seek(kv.MakeInternalKey(nil, it.key, 0, kv.KindDelete))
	}
	it.settle(it.key)
}

// Prev retreats to the previous live user key.
func (it *Iterator) Prev() {
	it.d.mu.Lock()
	defer it.d.mu.Unlock()
	if !it.ok {
		return
	}
	it.settleBackward(it.key)
}

// settleBackward walks the merged stream backward to the newest
// visible version of the largest live user key strictly below upper
// (nil = unbounded). Backward order visits a user key's versions
// oldest first, so each run is scanned to its end before being
// resolved. Caller holds d.mu.
func (it *Iterator) settleBackward(upper []byte) {
	it.ok = false
	var (
		curUser  []byte
		haveRun  bool
		bestVal  []byte
		bestDel  bool
		haveBest bool
	)
	emit := func() bool {
		if haveRun && haveBest && !bestDel {
			it.key = append(it.key[:0], curUser...)
			if !it.setValue(bestVal) {
				return true // stop: chase error recorded in it.err
			}
			it.ok = true
			return true
		}
		return false
	}
	for it.m.Valid() {
		ik := it.m.Key()
		u := ik.UserKey()
		if upper != nil && kv.CompareUser(u, upper) >= 0 {
			it.m.Prev()
			continue
		}
		if !haveRun || kv.CompareUser(u, curUser) != 0 {
			// Entering a smaller user key's run: the previous run is
			// complete; resolve it.
			if haveRun && emit() {
				return
			}
			curUser = append(curUser[:0], u...)
			haveRun = true
			haveBest = false
		}
		if ik.Seq() <= it.seq {
			// Ascending-seq order within the run: the last visible
			// entry seen is the newest visible version.
			bestVal = append(bestVal[:0], it.m.Value()...)
			bestDel = ik.Kind() == kv.KindDelete
			haveBest = true
		}
		it.m.Prev()
	}
	if emit() {
		return
	}
	if err := it.m.Error(); err != nil {
		it.err = err
	}
}

// settle advances the merged stream to the newest visible version of
// the next live user key after prevUser (nil = no lower bound).
// Caller holds d.mu.
func (it *Iterator) settle(prevUser []byte) {
	it.ok = false
	for it.m.Valid() {
		ik := it.m.Key()
		if ik.Seq() > it.seq {
			it.m.Next()
			continue
		}
		u := ik.UserKey()
		if prevUser != nil && kv.CompareUser(u, prevUser) <= 0 {
			it.m.Next()
			continue
		}
		if ik.Kind() == kv.KindDelete {
			// Tombstone: skip every older version of this key.
			prevUser = append([]byte(nil), u...)
			it.m.Next()
			continue
		}
		it.key = append(it.key[:0], u...)
		if !it.setValue(it.m.Value()) {
			return
		}
		it.ok = true
		return
	}
	if err := it.m.Error(); err != nil {
		it.err = err
	}
}

// setValue stores the emitted value, chasing a value-log pointer when
// key–value separation is on. The iterator's snapshot keeps value-log
// GC at bay, so a pointer read here cannot race a segment drop.
// Caller holds d.mu; returns false (with it.err set) on a chase error.
func (it *Iterator) setValue(stored []byte) bool {
	if !it.d.cfg.vlogEnabled() {
		it.val = append(it.val[:0], stored...)
		return true
	}
	v, err := it.d.resolveValue(stored)
	if err != nil {
		it.err = err
		return false
	}
	it.val = v
	return true
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return it.ok && it.err == nil }

// Key returns the current user key (valid until the next move).
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value (valid until the next move).
func (it *Iterator) Value() []byte { return it.val }

// Error reports an iteration error.
func (it *Iterator) Error() error { return it.err }

// Close releases the iterator's snapshot and its pin on the files it
// was reading, letting deferred compaction reclamation run. Closing
// twice is a no-op.
func (it *Iterator) Close() {
	if it.snap != nil {
		it.snap.Release()
		it.snap = nil
	}
	if !it.done {
		it.done = true
		it.d.mu.Lock()
		it.d.unpinIter(it.epoch)
		it.d.mu.Unlock()
	}
}

// KV is a key/value pair returned by Scan.
type KV struct {
	Key   []byte
	Value []byte
}

// Scan returns up to limit live entries with keys >= start, the range
// query used by YCSB workload E.
func (d *DB) Scan(start []byte, limit int) ([]KV, error) {
	it := d.NewIterator()
	defer it.Close()
	var out []KV
	for it.Seek(start); it.Valid() && len(out) < limit; it.Next() {
		out = append(out, KV{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
	}
	return out, it.Error()
}

// ScanReverse returns up to limit live entries with keys <= start in
// descending order (nil start = from the largest key).
func (d *DB) ScanReverse(start []byte, limit int) ([]KV, error) {
	it := d.NewIterator()
	defer it.Close()
	if start == nil {
		it.SeekToLast()
	} else {
		it.Seek(start)
		if it.Valid() {
			if kv.CompareUser(it.Key(), start) > 0 {
				it.Prev()
			}
		} else {
			it.SeekToLast()
		}
	}
	var out []KV
	for ; it.Valid() && len(out) < limit; it.Prev() {
		out = append(out, KV{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
	}
	return out, it.Error()
}
