// Crash-replay drivers: run the crashtest harness against the engine
// with a geometry small enough that the seeded workload crosses
// several flushes and compactions, then cut power at every device
// write boundary and check the recovery contract after each reopen.
// This file is an external test package so it can import the harness
// (which itself imports lsm).
package lsm_test

import (
	"testing"

	"sealdb/internal/faultfs/crashtest"
	"sealdb/internal/kv"
	"sealdb/internal/lsm"
)

// crashConfig builds a harness config on a tiny geometry: 8 KiB
// SSTables and memtables make a ~300-op workload produce multiple
// flushes, and the script's explicit compactions plus the L0 trigger
// produce real merges, so cuts land inside every phase the engine
// has: WAL appends, table writes, manifest edits, set migrations.
func crashConfig(mode lsm.Mode, stride int64) crashtest.Config {
	return crashtest.Config{
		DB: lsm.Config{
			Mode: mode,
			// 256 MiB keeps an extfs block group (capacity/64) larger
			// than the manifest extent; the platter is sparse, so the
			// capacity costs nothing.
			Geometry: lsm.ScaledGeometry(8*kv.KiB, 256*kv.MiB),
			Seed:     1,
		},
		Seed:   42,
		Ops:    crashtest.Workload(42, 300, 120),
		Stride: stride,
	}
}

// TestCrashReplay is the acceptance sweep: SEALDB mode, power cut at
// every write boundary (strided under -short to keep the default
// suite fast; CI runs the full sweep).
func TestCrashReplay(t *testing.T) {
	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	res := crashtest.Run(t, crashConfig(lsm.ModeSEALDB, stride))
	t.Logf("crash replay (sealdb): %s", res)
	if res.Cuts == 0 {
		t.Fatal("harness injected no cuts")
	}
}

// TestCrashReplayVlog sweeps the value-separated mode: the workload's
// 60–180 B values separate at a 64 B threshold, so cuts land between
// vlog appends, WAL appends, and segment rotations. Acked writes must
// recover through their pointers with no dangling reference —
// VerifyIntegrity checks pointer/segment reconciliation after every
// reopen.
func TestCrashReplayVlog(t *testing.T) {
	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	cfg := crashConfig(lsm.ModeSEALDB, stride)
	cfg.DB.ValueThreshold = 64
	res := crashtest.Run(t, cfg)
	t.Logf("crash replay (sealdb+vlog): %s", res)
	if res.Cuts == 0 {
		t.Fatal("harness injected no cuts")
	}
}

// TestCrashReplayFixedBand covers the fixed-band drive and ext4-like
// allocator recovery path (ModeLevelDB). Strided: the sweep's value
// here is hitting the other allocator's reopen code, not exhaustive
// boundary coverage, which TestCrashReplay already provides.
func TestCrashReplayFixedBand(t *testing.T) {
	stride := int64(7)
	if testing.Short() {
		stride = 41
	}
	res := crashtest.Run(t, crashConfig(lsm.ModeLevelDB, stride))
	t.Logf("crash replay (leveldb): %s", res)
}
