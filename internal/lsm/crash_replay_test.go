// Crash-replay drivers: run the crashtest harness against the engine
// with a geometry small enough that the seeded workload crosses
// several flushes and compactions, then cut power at every device
// write boundary and check the recovery contract after each reopen.
// This file is an external test package so it can import the harness
// (which itself imports lsm).
package lsm_test

import (
	"testing"
	"time"

	"sealdb/internal/faultfs/crashtest"
	"sealdb/internal/kv"
	"sealdb/internal/lsm"
)

// crashConfig builds a harness config on a tiny geometry: 8 KiB
// SSTables and memtables make a ~300-op workload produce multiple
// flushes, and the script's explicit compactions plus the L0 trigger
// produce real merges, so cuts land inside every phase the engine
// has: WAL appends, table writes, manifest edits, set migrations.
func crashConfig(mode lsm.Mode, stride int64) crashtest.Config {
	return crashtest.Config{
		DB: lsm.Config{
			Mode: mode,
			// 256 MiB keeps an extfs block group (capacity/64) larger
			// than the manifest extent; the platter is sparse, so the
			// capacity costs nothing.
			Geometry: lsm.ScaledGeometry(8*kv.KiB, 256*kv.MiB),
			Seed:     1,
		},
		Seed:   42,
		Ops:    crashtest.Workload(42, 300, 120),
		Stride: stride,
	}
}

// TestCrashReplay is the acceptance sweep: SEALDB mode, power cut at
// every write boundary (strided under -short to keep the default
// suite fast; CI runs the full sweep).
func TestCrashReplay(t *testing.T) {
	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	res := crashtest.Run(t, crashConfig(lsm.ModeSEALDB, stride))
	t.Logf("crash replay (sealdb): %s", res)
	if res.Cuts == 0 {
		t.Fatal("harness injected no cuts")
	}
}

// TestCrashReplayVlog sweeps the value-separated mode: the workload's
// 60–180 B values separate at a 64 B threshold, so cuts land between
// vlog appends, WAL appends, and segment rotations. Acked writes must
// recover through their pointers with no dangling reference —
// VerifyIntegrity checks pointer/segment reconciliation after every
// reopen.
func TestCrashReplayVlog(t *testing.T) {
	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	cfg := crashConfig(lsm.ModeSEALDB, stride)
	cfg.DB.ValueThreshold = 64
	res := crashtest.Run(t, cfg)
	t.Logf("crash replay (sealdb+vlog): %s", res)
	if res.Cuts == 0 {
		t.Fatal("harness injected no cuts")
	}
}

// TestCrashReplaySurface sweeps with periodic storage-surface
// snapshots armed, so power cuts land while the observatory is
// actively journaling and charging dead bytes. After every reopen the
// harness's VerifyIntegrity reconciles the rebuilt band accounting
// against a fresh extent-table scan (rebuild-on-recovery contract) —
// then one more explicit end-to-end VerifySurface documents the
// assertion this test exists for.
func TestCrashReplaySurface(t *testing.T) {
	stride := int64(1)
	if testing.Short() {
		stride = 17
	}
	cfg := crashConfig(lsm.ModeSEALDB, stride)
	cfg.DB.SurfaceSnapshotInterval = 2 * time.Millisecond // device time
	cfg.DB.JournalCapacity = 1 << 12
	res := crashtest.Run(t, cfg)
	t.Logf("crash replay (sealdb+surface): %s", res)
	if res.Cuts == 0 {
		t.Fatal("harness injected no cuts")
	}

	dev := lsm.NewDevice(cfg.DB)
	db, err := lsm.OpenDevice(cfg.DB, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i, op := range cfg.Ops {
		switch op.Kind {
		case crashtest.OpPut:
			err = db.Put(op.Keys[0], op.Vals[0])
		case crashtest.OpDelete:
			err = db.Delete(op.Keys[0])
		case crashtest.OpBatch:
			b := lsm.NewBatch()
			for j := range op.Keys {
				b.Put(op.Keys[j], op.Vals[j])
			}
			err = db.Apply(b)
		case crashtest.OpCompact:
			err = db.CompactRange(nil, nil)
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := db.VerifySurface(); err != nil {
		t.Fatalf("surface accounting after full workload: %v", err)
	}
}

// TestCrashReplayFixedBand covers the fixed-band drive and ext4-like
// allocator recovery path (ModeLevelDB). Strided: the sweep's value
// here is hitting the other allocator's reopen code, not exhaustive
// boundary coverage, which TestCrashReplay already provides.
func TestCrashReplayFixedBand(t *testing.T) {
	stride := int64(7)
	if testing.Short() {
		stride = 41
	}
	res := crashtest.Run(t, crashConfig(lsm.ModeLevelDB, stride))
	t.Logf("crash replay (leveldb): %s", res)
}
