package lsm

import (
	"bytes"
	"io"
	"sort"

	"sealdb/internal/kv"
	"sealdb/internal/sstable"
	"sealdb/internal/storage"
	"sealdb/internal/version"
)

// compaction describes one picked compaction.
type compaction struct {
	level    int // input level
	outLevel int
	inputs0  []*version.FileMeta // from level
	inputs1  []*version.FileMeta // from outLevel (the victim's set)
	trivial  bool
}

func (c *compaction) inputBytes() int64 {
	var n int64
	for _, f := range c.inputs0 {
		n += f.Size
	}
	for _, f := range c.inputs1 {
		n += f.Size
	}
	return n
}

// pickCompaction selects the neediest level and builds the compaction
// unit: the victim SSTable(s) plus the overlapping files of the next
// level — which in SEALDB is precisely the victim's set. It returns
// nil when every level is within its target. Caller holds d.mu.
func (d *DB) pickCompaction() *compaction {
	v := d.vs.Current()
	level, score := -1, 0.0
	// Level 0 pressure: file count.
	if s := float64(v.NumFiles(0)) / float64(d.cfg.L0CompactTrigger); s >= 1 && s > score {
		level, score = 0, s
	}
	// Deeper levels: bytes against target. The last level has no
	// target (nowhere to push data down to).
	for l := 1; l < d.cfg.NumLevels-1; l++ {
		if s := float64(v.LevelBytes(l)) / float64(d.cfg.maxBytesForLevel(l)); s >= 1 && s > score {
			level, score = l, s
		}
	}
	if level < 0 {
		return nil
	}

	c := &compaction{level: level, outLevel: level + 1}
	victim := d.pickVictim(v, level)
	if victim == nil {
		return nil
	}
	c.inputs0 = []*version.FileMeta{victim}

	if level == 0 {
		// Level-0 files overlap each other: pull in every L0 file
		// whose range touches the victim's, growing to a fixpoint.
		smallest, largest := victim.Smallest.UserKey(), victim.Largest.UserKey()
		for {
			files := v.Overlaps(0, smallest, largest, false)
			if len(files) == len(c.inputs0) {
				break
			}
			c.inputs0 = files
			smallest, largest = keyRange(files)
		}
	}

	lo, hi := keyRange(c.inputs0)
	c.inputs1 = v.Overlaps(c.outLevel, lo, hi, d.cfg.sortedLevel(c.outLevel))

	// SMRDB: its single deep level overlaps, so one compaction could
	// implicate an unbounded set of files; the re-implementation caps
	// the fan-in (DESIGN.md, known deviations).
	if d.cfg.Mode == ModeSMRDB && len(c.inputs1) > d.cfg.MaxCompactionFiles {
		c.inputs1 = c.inputs1[:d.cfg.MaxCompactionFiles]
	}

	// Trivial move: a single input with nothing to merge against
	// moves down without I/O (LevelDB's IsTrivialMove). Legal into an
	// overlapped level too — overlap is permitted there by design.
	if len(c.inputs0) == 1 && len(c.inputs1) == 0 {
		c.trivial = true
	}
	return c
}

// pickVictim chooses the file to compact out of a level. SEALDB
// prioritizes members of the set with the most invalid SSTables (the
// paper's implicit garbage collection); everyone falls back to
// LevelDB's round-robin compact pointer.
func (d *DB) pickVictim(v *version.Version, level int) *version.FileMeta {
	files := v.Files[level]
	if len(files) == 0 {
		return nil
	}
	if d.cfg.Mode == ModeSEALDB && level >= 2 {
		best, bestInvalid := -1, 0
		for i, f := range files {
			if f.SetID == 0 {
				continue
			}
			if inv := d.sets.invalidCount(f.SetID); inv > bestInvalid {
				best, bestInvalid = i, inv
			}
		}
		if best >= 0 {
			return files[best]
		}
	}
	ptr := d.vs.CompactPointer(level)
	if ptr != nil {
		for _, f := range files {
			if kv.CompareInternal(f.Largest, ptr) > 0 {
				return f
			}
		}
	}
	return files[0]
}

// keyRange returns the user-key span of a file list.
func keyRange(files []*version.FileMeta) (lo, hi []byte) {
	for _, f := range files {
		if lo == nil || kv.CompareUser(f.Smallest.UserKey(), lo) < 0 {
			lo = f.Smallest.UserKey()
		}
		if hi == nil || kv.CompareUser(f.Largest.UserKey(), hi) > 0 {
			hi = f.Largest.UserKey()
		}
	}
	return lo, hi
}

// runCompaction executes a compaction: merge the inputs, write the
// outputs (as one contiguous set when the mode calls for it), log the
// edit, and reclaim input space. Caller holds d.mu.
func (d *DB) runCompaction(c *compaction) error {
	d.compID++
	id := d.compID
	startBusy := d.disk.Stats().BusyTime
	hostStart := d.drive.HostBytesWritten()
	devStart := d.disk.Stats().BytesWritten
	sp := d.journal.Begin("compaction", 0)
	sp.Set("id", int64(id))
	sp.Set("from", int64(c.level))
	sp.Set("to", int64(c.outLevel))

	if c.trivial {
		f := c.inputs0[0]
		edit := &version.Edit{
			Deleted: []version.DeletedFile{{Level: c.level, Num: f.Num}},
			Added:   []version.AddedFile{{Level: c.outLevel, Meta: f}},
			CompactPointers: []version.CompactPointer{
				{Level: c.level, Key: f.Largest.Clone()},
			},
		}
		if err := d.vs.LogAndApply(edit); err != nil {
			return err
		}
		d.stats.TrivialMoves++
		d.stats.Compactions = append(d.stats.Compactions, CompactionInfo{
			ID: id, FromLevel: c.level, ToLevel: c.outLevel,
			Inputs0: 1, TrivialMove: true,
		})
		d.metrics.trivialMoves.Inc()
		sp.Set("trivial", 1)
		sp.End()
		return nil
	}

	d.disk.SetTag(int64(id))
	outputs, vlogDead, err := d.mergeInputs(c)
	if err != nil {
		return err
	}

	// Place the outputs: grouped modes write the new set in one
	// contiguous extent; others write file by file.
	var (
		newSet   *version.SetRecord
		outFiles []version.AddedFile
	)
	nums := make([]uint64, len(outputs))
	datas := make([][]byte, len(outputs))
	var outBytes int64
	for i, o := range outputs {
		nums[i] = o.num
		datas[i] = o.data
		outBytes += int64(len(o.data))
	}
	if len(outputs) > 0 && d.cfg.groupedOutputs(c.outLevel) {
		ext, grouped, err := d.backend.WriteGroup(nums, datas)
		if err != nil {
			return err
		}
		if grouped {
			rec := version.SetRecord{ID: nums[0], Off: ext.Off, Len: ext.Len, Members: len(nums)}
			newSet = &rec
			d.sets.register(rec, nums)
			d.surfaceClaim(ext.Off, rec.ID, outBytes)
			d.metrics.setsCreated.Inc()
		}
	} else {
		for i := range outputs {
			if err := d.backend.WriteFile(nums[i], datas[i]); err != nil {
				return err
			}
		}
	}
	d.disk.SetTag(0)
	setID := uint64(0)
	if newSet != nil {
		setID = newSet.ID
	}
	for _, o := range outputs {
		o.meta.SetID = setID
		outFiles = append(outFiles, version.AddedFile{Level: c.outLevel, Meta: o.meta})
	}

	// Build and log the edit, including set bookkeeping: the new set
	// and any input sets emptied by this compaction.
	edit := &version.Edit{Added: outFiles}
	if newSet != nil {
		edit.NewSets = []version.SetRecord{*newSet}
	}
	for _, f := range c.inputs0 {
		edit.Deleted = append(edit.Deleted, version.DeletedFile{Level: c.level, Num: f.Num})
	}
	for _, f := range c.inputs1 {
		edit.Deleted = append(edit.Deleted, version.DeletedFile{Level: c.outLevel, Num: f.Num})
	}
	_, hi := keyRange(c.inputs0)
	edit.CompactPointers = []version.CompactPointer{
		{Level: c.level, Key: kv.MakeInternalKey(nil, hi, 0, kv.KindDelete)},
	}

	// Dropped pointer entries kill their value-log records; the
	// deltas ride the same edit so recovery rebuilds the dead counts.
	if len(vlogDead) > 0 {
		edit.VlogDead = d.vlogChargeDead(vlogDead)
	}

	// Mark dead inputs in the set registry before logging so the
	// edit carries the DropSet records atomically.
	var freedExtents []storage.Extent
	allInputs := append(append([]*version.FileMeta(nil), c.inputs0...), c.inputs1...)
	for _, f := range allInputs {
		// Surface accounting first, while the registry still knows the
		// member's set: the input's bytes turn dead on its band until
		// the extent (or its whole set) returns to the free list.
		d.surfaceChargeInput(f.Num)
		if ext, setID, emptied := d.sets.fileInvalid(f.Num); emptied {
			edit.DropSets = append(edit.DropSets, setID)
			freedExtents = append(freedExtents, ext)
			d.metrics.setsDropped.Inc()
		}
	}
	if err := d.vs.LogAndApply(edit); err != nil {
		return err
	}

	// Reclaim space: ungrouped inputs free via Remove; grouped inputs
	// were only forgotten, and their extents return to the free list
	// when their whole set died. Deferred while iterators that may
	// still read the inputs are live (see pins.go).
	inputNums := make([]uint64, len(allInputs))
	for i, f := range allInputs {
		inputNums[i] = f.Num
	}
	if err := d.reclaim(inputNums, freedExtents); err != nil {
		return err
	}

	placements := make([]storage.Extent, 0, len(outputs))
	for _, o := range outputs {
		if ext, err := d.backend.FileExtent(o.num); err == nil {
			placements = append(placements, ext)
		}
	}
	inBytes := c.inputBytes()
	lat := d.disk.Stats().BusyTime - startBusy
	hostBytes := d.drive.HostBytesWritten() - hostStart
	devBytes := d.disk.Stats().BytesWritten - devStart
	d.stats.CompactionCount++
	d.stats.CompactionReadBytes += inBytes
	d.stats.CompactionWriteBytes += outBytes
	d.stats.Compactions = append(d.stats.Compactions, CompactionInfo{
		ID: id, FromLevel: c.level, ToLevel: c.outLevel,
		Inputs0: len(c.inputs0), Inputs1: len(c.inputs1),
		InputBytes: inBytes, OutputBytes: outBytes,
		OutputFiles:      len(outputs),
		Latency:          lat,
		HostBytes:        hostBytes,
		DeviceBytes:      devBytes,
		OutputPlacements: placements,
	})
	d.metrics.compactions.Inc()
	d.metrics.compactionReadBytes.Add(inBytes)
	d.metrics.compactionWriteBytes.Add(outBytes)
	d.metrics.compactionLatency.Observe(int64(lat))
	// Per-level amplification accounting: bytes read out of each input
	// level, bytes written into the output level.
	var in0, in1 int64
	for _, f := range c.inputs0 {
		in0 += f.Size
	}
	for _, f := range c.inputs1 {
		in1 += f.Size
	}
	d.metrics.levelReadBytes[c.level].Add(in0)
	d.metrics.levelReadBytes[c.outLevel].Add(in1)
	d.metrics.levelWriteBytes[c.outLevel].Add(outBytes)
	sp.Set("input_bytes", inBytes)
	sp.Set("output_bytes", outBytes)
	sp.Set("output_files", int64(len(outputs)))
	if newSet != nil {
		sp.Set("set", int64(newSet.ID))
	}
	sp.End()
	return nil
}

// output is a finished compaction output table.
type output struct {
	num  uint64
	data []byte
	meta *version.FileMeta
}

// readahead models the OS readahead a streaming merge gets on each
// input file: 128 KiB at full scale, shrunk with the device time
// scale so the seek-to-transfer ratio of a k-way interleaved merge is
// as scale-invariant as the 4 KiB block floor allows.
func (c *Config) readahead() int {
	scale := c.DeviceTimeScale
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	ra := int(float64(128*kv.KiB) * scale)
	if ra < 4096 {
		ra = 4096
	}
	return ra
}

// inputIterators builds the merge's child iterators.
//
// This is where the paper's set advantage lives: SEALDB (and the
// LevelDB+sets ablation) first reads every input whole — and a set is
// one contiguous extent, so those reads are one large sequential I/O
// — then merges from memory (§III-A: "multiple random accesses on
// scattered SSTables are turned into a large sequential one").
// LevelDB and SMRDB stream their inputs block by block instead, the
// k-way interleave paying a seek whenever it switches files.
// Both paths bypass the block cache, as LevelDB compactions do.
func (d *DB) inputIterators(c *compaction) ([]kv.Iterator, error) {
	all := append(append([]*version.FileMeta(nil), c.inputs0...), c.inputs1...)
	var children []kv.Iterator
	if d.cfg.groupedOutputs(2) {
		// Prefetch in physical order so contiguous sets are read in
		// one pass without seeking.
		sorted := append([]*version.FileMeta(nil), all...)
		sort.Slice(sorted, func(i, j int) bool {
			ei, _ := d.backend.FileExtent(sorted[i].Num)
			ej, _ := d.backend.FileExtent(sorted[j].Num)
			return ei.Off < ej.Off
		})
		for _, f := range sorted {
			size, err := d.backend.FileSize(f.Num)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, size)
			if _, err := d.backend.ReadFileAt(f.Num, buf, 0); err != nil && err != io.EOF {
				return nil, err
			}
			t, err := sstable.Open(bytes.NewReader(buf), size, f.Num, nil)
			if err != nil {
				return nil, err
			}
			children = append(children, t.NewIterator())
		}
		return children, nil
	}
	for _, f := range all {
		t, err := d.openTable(f)
		if err != nil {
			return nil, err
		}
		children = append(children, t.NewCompactionIterator(d.cfg.readahead()))
	}
	return children, nil
}

// mergeInputs runs the merge loop: inputs are read in key order,
// shadowed versions and dead tombstones are dropped (respecting
// snapshots), and outputs are cut at the SSTable target size, never
// splitting a user key across outputs. dead accumulates the
// value-log bytes whose pointers were dropped here, per segment
// (nil when key–value separation is off). Caller holds d.mu.
func (d *DB) mergeInputs(c *compaction) ([]*output, map[uint64]int64, error) {
	children, err := d.inputIterators(c)
	if err != nil {
		return nil, nil, err
	}
	merge := newMergingIter(children...)

	smallestSnap := d.smallestSnapshot()
	var (
		outputs     []*output
		builder     *sstable.Builder
		curUser     []byte
		haveCur     bool
		lastSeq     kv.SeqNum
		wantCut     bool
		lastOutUser []byte
		dead        map[uint64]int64
	)
	finish := func() error {
		if builder == nil || builder.Empty() {
			builder = nil
			return nil
		}
		data, meta, err := builder.Finish()
		if err != nil {
			return err
		}
		num := d.vs.NewFileNum()
		outputs = append(outputs, &output{
			num:  num,
			data: append([]byte(nil), data...),
			meta: &version.FileMeta{
				Num: num, Size: meta.Size,
				Smallest: meta.Smallest, Largest: meta.Largest,
			},
		})
		builder = nil
		wantCut = false
		return nil
	}

	for merge.SeekToFirst(); merge.Valid(); merge.Next() {
		ik := merge.Key()
		user := ik.UserKey()
		drop := false
		if !haveCur || kv.CompareUser(user, curUser) != 0 {
			curUser = append(curUser[:0], user...)
			haveCur = true
			lastSeq = kv.MaxSeqNum
		}
		switch {
		case lastSeq <= smallestSnap:
			// A newer version of this key, itself visible at the
			// oldest snapshot, has already been emitted: this one is
			// unreachable.
			drop = true
		case ik.Kind() == kv.KindDelete && ik.Seq() <= smallestSnap && d.isBaseLevelForKey(c, user):
			// Tombstone with nothing underneath it to shadow.
			drop = true
		}
		lastSeq = ik.Seq()
		if drop {
			// A dropped version is the last reference to its value-log
			// record: its bytes become dead in the record's segment.
			if d.cfg.vlogEnabled() && ik.Kind() == kv.KindSet {
				if seg, n := d.vlogDeadValue(merge.Value()); n > 0 {
					if dead == nil {
						dead = map[uint64]int64{}
					}
					dead[seg] += n
				}
			}
			continue
		}

		// Cut the output at the size target, but never between
		// versions of one user key.
		if wantCut && (lastOutUser == nil || kv.CompareUser(user, lastOutUser) != 0) {
			if err := finish(); err != nil {
				return nil, nil, err
			}
		}
		if builder == nil {
			builder = sstable.NewBuilder().SetCompression(d.cfg.Compression)
		}
		builder.Add(ik, merge.Value())
		lastOutUser = append(lastOutUser[:0], user...)
		if builder.EstimatedSize() >= d.cfg.SSTableSize {
			wantCut = true
		}
	}
	if err := merge.Error(); err != nil {
		return nil, nil, err
	}
	if err := finish(); err != nil {
		return nil, nil, err
	}
	return outputs, dead, nil
}

// isBaseLevelForKey reports whether no level deeper than the
// compaction's output can hold user key — and, for overlapped
// levels, that no uninvolved file of the output level overlaps it —
// so a sufficiently old tombstone can be dropped.
func (d *DB) isBaseLevelForKey(c *compaction, user []byte) bool {
	v := d.vs.Current()
	for l := c.outLevel + 1; l < d.cfg.NumLevels; l++ {
		if len(v.Overlaps(l, user, user, d.cfg.sortedLevel(l))) > 0 {
			return false
		}
	}
	if !d.cfg.sortedLevel(c.outLevel) {
		in := make(map[uint64]bool, len(c.inputs1))
		for _, f := range c.inputs1 {
			in[f.Num] = true
		}
		for _, f := range v.Overlaps(c.outLevel, user, user, false) {
			if !in[f.Num] {
				return false
			}
		}
	}
	return true
}

// CompactAll drives compactions until the tree is balanced; useful
// for tests and to settle a freshly loaded database.
func (d *DB) CompactAll() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.writeAllowed(); err != nil {
		return err
	}
	if err := d.compactUntilBalanced(); err != nil {
		return d.failWrite(err)
	}
	return nil
}

// FlushMemtable forces the current memtable to level 0 (test hook and
// benchmark phase boundary).
func (d *DB) FlushMemtable() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.writeAllowed(); err != nil {
		return err
	}
	if d.mem.Empty() {
		return nil
	}
	if err := d.rotateAndFlush(d.cfg.walSize()); err != nil {
		return d.failWrite(err)
	}
	if err := d.compactUntilBalanced(); err != nil {
		return d.failWrite(err)
	}
	return nil
}
