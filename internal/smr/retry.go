package smr

import (
	"errors"
	"sync"
	"time"

	"sealdb/internal/platter"
)

// TransientError is implemented by errors that may succeed on retry
// (e.g. a simulated media hiccup from a fault injector). Errors that
// do not implement it — or whose Transient method returns false — are
// treated as permanent.
type TransientError interface {
	error
	Transient() bool
}

// IsTransient reports whether any error in err's chain declares
// itself transient.
func IsTransient(err error) bool {
	var te TransientError
	return errors.As(err, &te) && te.Transient()
}

// RetryStats counts the retry layer's activity.
type RetryStats struct {
	// Retried is the number of individual retry attempts issued.
	Retried int64
	// Recovered is the number of writes that failed at least once
	// and then succeeded on a retry.
	Recovered int64
	// Exhausted is the number of writes that still failed after the
	// retry budget (the error is surfaced to the caller).
	Exhausted int64
}

// RetryDrive is drive middleware that retries transient WriteAt
// failures a bounded number of times with doubling backoff. Reads are
// not retried (the read path has its own recovery semantics), and
// permanent errors pass straight through.
//
// The backoff is charged as simulated service time: each retry's wait
// is added to the duration returned by WriteAt, so the cost model
// stays honest without real sleeps.
type RetryDrive struct {
	inner   Drive
	retries int
	backoff time.Duration

	mu       sync.Mutex
	stats    RetryStats                                   // guarded by mu
	observer func(attempt int, err error, recovered bool) // guarded by mu
}

// NewRetry wraps inner with a retry policy of up to retries extra
// attempts, the first after backoff, doubling each time.
func NewRetry(inner Drive, retries int, backoff time.Duration) *RetryDrive {
	if retries < 0 {
		retries = 0
	}
	if backoff <= 0 {
		backoff = 200 * time.Microsecond
	}
	return &RetryDrive{inner: inner, retries: retries, backoff: backoff}
}

// SetObserver installs a callback invoked once per retry attempt
// (recovered reports whether that attempt succeeded). Used by the
// observability layer to journal retry storms.
func (d *RetryDrive) SetObserver(fn func(attempt int, err error, recovered bool)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.observer = fn
}

// Stats returns a snapshot of the retry counters.
func (d *RetryDrive) Stats() RetryStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// note updates the retry counters and fetches the observer under the
// drive's lock, so concurrent writers (WAL appends racing a manifest
// rotation) do not tear the counters.
func (d *RetryDrive) note(f func(*RetryStats)) func(attempt int, err error, recovered bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f(&d.stats)
	return d.observer
}

// Unwrap implements Unwrapper.
func (d *RetryDrive) Unwrap() Drive { return d.inner }

// WriteAt implements Drive, retrying transient failures.
func (d *RetryDrive) WriteAt(p []byte, off int64) (time.Duration, error) {
	total, err := d.inner.WriteAt(p, off)
	if err == nil || !IsTransient(err) {
		return total, err
	}
	wait := d.backoff
	for attempt := 1; attempt <= d.retries; attempt++ {
		total += wait
		wait *= 2
		d.note(func(s *RetryStats) { s.Retried++ })
		dur, retryErr := d.inner.WriteAt(p, off)
		total += dur
		if retryErr == nil {
			if obs := d.note(func(s *RetryStats) { s.Recovered++ }); obs != nil {
				obs(attempt, err, true)
			}
			return total, nil
		}
		if obs := d.note(func(*RetryStats) {}); obs != nil {
			obs(attempt, retryErr, false)
		}
		err = retryErr
		if !IsTransient(err) {
			return total, err
		}
	}
	d.note(func(s *RetryStats) { s.Exhausted++ })
	return total, err
}

// ReadAt implements Drive.
func (d *RetryDrive) ReadAt(p []byte, off int64) (time.Duration, error) {
	return d.inner.ReadAt(p, off)
}

// Free implements Drive.
func (d *RetryDrive) Free(off, length int64) error { return d.inner.Free(off, length) }

// Guard implements Drive.
func (d *RetryDrive) Guard() int64 { return d.inner.Guard() }

// Capacity implements Drive.
func (d *RetryDrive) Capacity() int64 { return d.inner.Capacity() }

// HostBytesWritten implements Drive.
func (d *RetryDrive) HostBytesWritten() int64 { return d.inner.HostBytesWritten() }

// Disk implements Drive.
func (d *RetryDrive) Disk() *platter.Disk { return d.inner.Disk() }
