package smr

import (
	"bytes"
	"math/rand"
	"testing"

	"sealdb/internal/platter"
)

func newDisk(capacity int64) *platter.Disk {
	cfg := platter.DefaultConfig(capacity)
	cfg.ChunkSize = 4096
	return platter.New(cfg)
}

// --- FixedBandDrive ---

func TestFixedBandSequentialNoRMW(t *testing.T) {
	d := NewFixedBand(newDisk(1<<20), 64<<10)
	buf := make([]byte, 16<<10)
	for i := int64(0); i < 4; i++ {
		if _, err := d.WriteAt(buf, i*int64(len(buf))); err != nil {
			t.Fatal(err)
		}
	}
	if d.RMWCount() != 0 {
		t.Errorf("sequential fill caused %d RMWs", d.RMWCount())
	}
	if got := AWA(d); got != 1.0 {
		t.Errorf("sequential AWA = %v, want 1.0", got)
	}
}

func TestFixedBandRewriteTriggersRMW(t *testing.T) {
	bandSize := int64(64 << 10)
	d := NewFixedBand(newDisk(4<<20), bandSize)
	// Fill the first band fully.
	fill := make([]byte, bandSize)
	rand.New(rand.NewSource(1)).Read(fill)
	if _, err := d.WriteAt(fill, 0); err != nil {
		t.Fatal(err)
	}
	base := d.Disk().Stats().BytesWritten

	// Rewrite 4 KiB in the middle: the write is staged in the media
	// cache; the band is cleaned (read-modify-write) when it is next
	// read.
	patch := []byte("patched-data-....")
	if _, err := d.WriteAt(patch, 8192); err != nil {
		t.Fatal(err)
	}
	if d.RMWCount() != 0 {
		t.Fatalf("RMWCount = %d before cleaning, want 0 (media cache)", d.RMWCount())
	}

	// The read must see the merged data and trigger the cleaning.
	got := make([]byte, bandSize)
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if d.RMWCount() != 1 {
		t.Fatalf("RMWCount = %d after read, want 1", d.RMWCount())
	}
	want := append([]byte(nil), fill...)
	copy(want[8192:], patch)
	if !bytes.Equal(got, want) {
		t.Error("band contents corrupted by RMW")
	}
	// Device traffic: the cache append plus a full-band rewrite.
	devWritten := d.Disk().Stats().BytesWritten - base
	if devWritten != bandSize+int64(len(patch)) {
		t.Errorf("device wrote %d bytes, want band %d + cache %d", devWritten, bandSize, len(patch))
	}
	if awa := AWA(d); awa <= 1.0 {
		t.Errorf("AWA = %v, want > 1 after RMW", awa)
	}
}

func TestFixedBandCacheCoalescesCleaning(t *testing.T) {
	// Several random writes to one band must cost a single band
	// rewrite when cleaned, not one per write.
	bandSize := int64(64 << 10)
	d := NewFixedBand(newDisk(4<<20), bandSize)
	if _, err := d.WriteAt(make([]byte, bandSize), 0); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if _, err := d.WriteAt([]byte{byte(i)}, i*4096); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if d.RMWCount() != 1 {
		t.Errorf("RMWCount = %d, want 1 (coalesced cleaning)", d.RMWCount())
	}
	got := make([]byte, 1)
	for i := int64(0); i < 8; i++ {
		d.ReadAt(got, i*4096)
		if got[0] != byte(i) {
			t.Errorf("offset %d: got %d", i*4096, got[0])
		}
	}
}

func TestFixedBandCacheEvictionBound(t *testing.T) {
	// Dirtying more than maxDirtyBands bands forces cleanings.
	bandSize := int64(64 << 10)
	d := NewFixedBand(newDisk(8<<20), bandSize)
	for b := int64(0); b < 8; b++ {
		if _, err := d.WriteAt(make([]byte, bandSize), b*bandSize); err != nil {
			t.Fatal(err)
		}
	}
	for b := int64(0); b < 8; b++ {
		if _, err := d.WriteAt([]byte{1}, b*bandSize+100); err != nil {
			t.Fatal(err)
		}
	}
	if n := d.RMWCount(); n < 4 {
		t.Errorf("RMWCount = %d, want >= 4 with 8 dirty bands and a 4-band cache", n)
	}
}

func TestFixedBandRejectsWriteIntoCacheRegion(t *testing.T) {
	d := NewFixedBand(newDisk(1<<20), 64<<10)
	if _, err := d.WriteAt(make([]byte, 10), d.Capacity()); err == nil {
		t.Error("write into the media cache region accepted")
	}
}

func TestFixedBandWritePastPointerBackfills(t *testing.T) {
	bandSize := int64(64 << 10)
	d := NewFixedBand(newDisk(1<<20), bandSize)
	// Write at offset 4096 of an empty band: drive must not leave a
	// gap below the write pointer.
	if _, err := d.WriteAt([]byte("abc"), 4096); err != nil {
		t.Fatal(err)
	}
	if wp := d.WritePointer(0); wp != 4096+3 {
		t.Errorf("write pointer %d, want %d", wp, 4099)
	}
	got := make([]byte, 3)
	d.ReadAt(got, 4096)
	if string(got) != "abc" {
		t.Errorf("read back %q", got)
	}
}

func TestFixedBandSpanningWrite(t *testing.T) {
	bandSize := int64(16 << 10)
	d := NewFixedBand(newDisk(1<<20), bandSize)
	data := make([]byte, 3*bandSize+100)
	rand.New(rand.NewSource(2)).Read(data)
	if _, err := d.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if d.RMWCount() != 0 {
		t.Errorf("aligned spanning write caused %d RMWs", d.RMWCount())
	}
	got := make([]byte, len(data))
	d.ReadAt(got, 0)
	if !bytes.Equal(got, data) {
		t.Error("spanning write corrupted")
	}
}

func TestFixedBandHostAccounting(t *testing.T) {
	d := NewFixedBand(newDisk(1<<20), 64<<10)
	d.WriteAt(make([]byte, 1000), 0)
	d.WriteAt(make([]byte, 500), 1000)
	if h := d.HostBytesWritten(); h != 1500 {
		t.Errorf("host bytes %d, want 1500", h)
	}
}

// --- RawDrive ---

func TestRawDriveAppendStream(t *testing.T) {
	d := NewRaw(newDisk(1<<20), 4096)
	// Appending back-to-back never violates: the damage window of
	// each write holds no valid data yet.
	off := int64(0)
	for i := 0; i < 50; i++ {
		b := make([]byte, 1000)
		if _, err := d.WriteAt(b, off); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		off += 1000
	}
	if got := AWA(d); got != 1.0 {
		t.Errorf("AWA = %v, want exactly 1.0", got)
	}
	if v := d.ValidBytes(); v != 50000 {
		t.Errorf("valid bytes %d, want 50000", v)
	}
	if n := len(d.ValidExtents()); n != 1 {
		t.Errorf("appends did not merge into one extent: %d", n)
	}
}

func TestRawDriveRejectsOverwrite(t *testing.T) {
	d := NewRaw(newDisk(1<<20), 4096)
	if _, err := d.WriteAt(make([]byte, 8192), 0); err != nil {
		t.Fatal(err)
	}
	_, err := d.WriteAt(make([]byte, 100), 4000)
	if err == nil {
		t.Fatal("overwrite of valid data not rejected")
	}
	if _, ok := err.(*OverlapError); !ok {
		t.Fatalf("error type %T, want *OverlapError", err)
	}
}

func TestRawDriveRejectsDamageWindowHit(t *testing.T) {
	guard := int64(4096)
	d := NewRaw(newDisk(1<<20), guard)
	// Valid data at [100000, 104096).
	if _, err := d.WriteAt(make([]byte, 4096), 100000); err != nil {
		t.Fatal(err)
	}
	// Write ending 1 byte into the guard window upstream of it: the
	// write span [95905, 96905) is clear, but the damage window
	// [96905, 101001) hits the valid extent.
	if _, err := d.WriteAt(make([]byte, 1000), 95905); err == nil {
		t.Fatal("write whose damage window hits valid data not rejected")
	}
	// One byte further upstream the damage window stops exactly at
	// the valid extent: legal.
	if _, err := d.WriteAt(make([]byte, 1000), 100000-1000-guard); err != nil {
		t.Fatalf("write with exact guard spacing rejected: %v", err)
	}
}

func TestRawDriveFreeEnablesReuse(t *testing.T) {
	guard := int64(1024)
	d := NewRaw(newDisk(1<<20), guard)
	if _, err := d.WriteAt(make([]byte, 10000), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt(make([]byte, 10000), 20000); err != nil {
		t.Fatal(err)
	}
	// Reusing the first extent is illegal until freed.
	if _, err := d.WriteAt(make([]byte, 100), 0); err == nil {
		t.Fatal("reuse before Free not rejected")
	}
	if err := d.Free(0, 10000); err != nil {
		t.Fatal(err)
	}
	// Now a write that fits with its guard inside the freed hole is
	// legal ([0,8000) + guard [8000,9024) ⊂ [0,10000)).
	if _, err := d.WriteAt(make([]byte, 8000), 0); err != nil {
		t.Fatalf("reuse after Free rejected: %v", err)
	}
	// But writing right up to the downstream valid data is not:
	// [8000, 19500) would need damage window into [19500, 20524).
	if _, err := d.WriteAt(make([]byte, 11500), 8000); err == nil {
		t.Fatal("write damaging downstream neighbour not rejected")
	}
}

func TestRawDriveDamageWindowClippedAtCapacity(t *testing.T) {
	d := NewRaw(newDisk(1<<16), 4096)
	// Write ending exactly at capacity: damage window would run off
	// the surface; must still be legal.
	if _, err := d.WriteAt(make([]byte, 4096), 1<<16-4096); err != nil {
		t.Fatalf("write at end of surface rejected: %v", err)
	}
}

func TestRawDriveDataIntegrity(t *testing.T) {
	d := NewRaw(newDisk(1<<20), 512)
	rng := rand.New(rand.NewSource(5))
	type ext struct {
		off  int64
		data []byte
	}
	var live []ext
	off := int64(0)
	for i := 0; i < 100; i++ {
		b := make([]byte, 256+rng.Intn(1024))
		rng.Read(b)
		if _, err := d.WriteAt(b, off); err != nil {
			t.Fatal(err)
		}
		live = append(live, ext{off, b})
		off += int64(len(b))
	}
	for _, e := range live {
		got := make([]byte, len(e.data))
		d.ReadAt(got, e.off)
		if !bytes.Equal(got, e.data) {
			t.Fatalf("extent at %d corrupted", e.off)
		}
	}
}

func TestAWADefinitionOnEmptyDrive(t *testing.T) {
	d := NewRaw(newDisk(1<<16), 0)
	if AWA(d) != 1.0 {
		t.Error("AWA of an unused drive should be 1.0")
	}
}
