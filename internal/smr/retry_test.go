package smr

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"sealdb/internal/platter"
)

type scriptedErr struct {
	transient bool
}

func (e *scriptedErr) Error() string   { return fmt.Sprintf("scripted (transient=%v)", e.transient) }
func (e *scriptedErr) Transient() bool { return e.transient }

// scriptedDrive fails the next `failures` writes with err, then
// succeeds.
type scriptedDrive struct {
	Drive
	failures int
	err      error
	writes   int
}

func (d *scriptedDrive) WriteAt(p []byte, off int64) (time.Duration, error) {
	d.writes++
	if d.failures > 0 {
		d.failures--
		return 0, d.err
	}
	return d.Drive.WriteAt(p, off)
}

func (d *scriptedDrive) Unwrap() Drive { return d.Drive }

func newTestRaw(t *testing.T) *RawDrive {
	t.Helper()
	disk := platter.New(platter.DefaultConfig(1 << 20))
	return NewRaw(disk, 4096)
}

func TestRetryRecoversTransient(t *testing.T) {
	inner := newTestRaw(t)
	s := &scriptedDrive{Drive: inner, failures: 2, err: &scriptedErr{transient: true}}
	r := NewRetry(s, 3, time.Millisecond)

	p := []byte("hello durable world")
	dur, err := r.WriteAt(p, 0)
	if err != nil {
		t.Fatalf("write did not recover: %v", err)
	}
	if dur < 3*time.Millisecond { // 1ms + 2ms backoff charged
		t.Errorf("backoff not charged to service time: %v", dur)
	}
	st := r.Stats()
	if st.Recovered != 1 || st.Retried != 2 || st.Exhausted != 0 {
		t.Errorf("stats = %+v, want retried=2 recovered=1 exhausted=0", st)
	}
	got := make([]byte, len(p))
	if _, err := r.ReadAt(got, 0); err != nil || string(got) != string(p) {
		t.Fatalf("read back: %q, %v", got, err)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	inner := newTestRaw(t)
	werr := &scriptedErr{transient: true}
	s := &scriptedDrive{Drive: inner, failures: 10, err: werr}
	r := NewRetry(s, 3, time.Millisecond)

	_, err := r.WriteAt([]byte("x"), 0)
	if !errors.Is(err, werr) {
		t.Fatalf("want scripted error after exhaustion, got %v", err)
	}
	if st := r.Stats(); st.Exhausted != 1 || st.Retried != 3 {
		t.Errorf("stats = %+v, want retried=3 exhausted=1", st)
	}
	if s.writes != 4 { // initial + 3 retries
		t.Errorf("inner saw %d writes, want 4", s.writes)
	}
}

func TestRetryPassesPermanentThrough(t *testing.T) {
	inner := newTestRaw(t)
	werr := &scriptedErr{transient: false}
	s := &scriptedDrive{Drive: inner, failures: 10, err: werr}
	r := NewRetry(s, 3, time.Millisecond)

	_, err := r.WriteAt([]byte("x"), 0)
	if !errors.Is(err, werr) {
		t.Fatalf("want permanent error, got %v", err)
	}
	if s.writes != 1 {
		t.Errorf("permanent error was retried: %d writes", s.writes)
	}
	if IsTransient(err) {
		t.Error("permanent error classified transient")
	}
}

func TestBaseUnwrapsMiddleware(t *testing.T) {
	inner := newTestRaw(t)
	s := &scriptedDrive{Drive: inner}
	r := NewRetry(s, 1, time.Millisecond)
	if Base(r) != Drive(inner) {
		t.Fatalf("Base did not reach the raw drive through two layers")
	}
	if Base(inner) != Drive(inner) {
		t.Fatalf("Base changed an unwrapped drive")
	}
}
