package smr

import (
	"math/rand"
	"testing"
)

// refSet is a brute-force reference implementation over a byte map.
type refSet map[int64]bool

func (r refSet) insert(e Extent) {
	for i := e.Off; i < e.End(); i++ {
		r[i] = true
	}
}

func (r refSet) remove(e Extent) {
	for i := e.Off; i < e.End(); i++ {
		delete(r, i)
	}
}

func (r refSet) intersects(e Extent) bool {
	for i := e.Off; i < e.End(); i++ {
		if r[i] {
			return true
		}
	}
	return false
}

func (r refSet) total() int64 { return int64(len(r)) }

func TestExtentSetAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s extentSet
	ref := refSet{}
	const space = 500
	for i := 0; i < 4000; i++ {
		e := Extent{Off: int64(rng.Intn(space)), Len: int64(rng.Intn(20))}
		switch rng.Intn(3) {
		case 0:
			s.insert(e)
			ref.insert(e)
		case 1:
			s.remove(e)
			ref.remove(e)
		case 2:
			_, got := s.intersect(e)
			if want := ref.intersects(e); got != want {
				t.Fatalf("op %d: intersect(%v) = %v, want %v\nset: %v", i, e, got, want, s)
			}
		}
		if s.total() != ref.total() {
			t.Fatalf("op %d: total %d, want %d\nset: %v", i, s.total(), ref.total(), s)
		}
	}
}

func TestExtentSetInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var s extentSet
	for i := 0; i < 2000; i++ {
		e := Extent{Off: int64(rng.Intn(1000)), Len: int64(1 + rng.Intn(30))}
		if rng.Intn(2) == 0 {
			s.insert(e)
		} else {
			s.remove(e)
		}
		// Invariant: sorted, disjoint, non-adjacent, positive lengths.
		for j, x := range s {
			if x.Len <= 0 {
				t.Fatalf("non-positive extent %v at %d", x, j)
			}
			if j > 0 && s[j-1].End() >= x.Off {
				t.Fatalf("extents not disjoint/merged: %v then %v", s[j-1], x)
			}
		}
	}
}

func TestExtentSetMergesAdjacent(t *testing.T) {
	var s extentSet
	s.insert(Extent{0, 10})
	s.insert(Extent{10, 10})
	if len(s) != 1 || s[0] != (Extent{0, 20}) {
		t.Fatalf("adjacent extents not merged: %v", s)
	}
	s.insert(Extent{30, 5})
	s.insert(Extent{20, 10}) // bridges the gap
	if len(s) != 1 || s[0] != (Extent{0, 35}) {
		t.Fatalf("bridging insert not merged: %v", s)
	}
}

func TestExtentSetRemoveSplits(t *testing.T) {
	var s extentSet
	s.insert(Extent{0, 100})
	s.remove(Extent{40, 20})
	if len(s) != 2 || s[0] != (Extent{0, 40}) || s[1] != (Extent{60, 40}) {
		t.Fatalf("remove did not split: %v", s)
	}
}
