// Package smr layers shingled-magnetic-recording semantics on top of
// a raw platter. Two device models are provided:
//
//   - FixedBandDrive divides the surface into fixed-size bands with a
//     per-band write pointer. Writes at the pointer stream through;
//     any other write triggers a read-modify-write of the band's
//     valid prefix, which is where the paper's auxiliary write
//     amplification (AWA) comes from.
//   - RawDrive is a Caveat-Scriptor-style drive: the host may write
//     anywhere, but a write at [s,e) destroys the following guard
//     window [e, e+guard), so the drive rejects any write whose span
//     or damage window touches valid data. There is no RMW, hence
//     AWA ≡ 1; safety is the host's job (package dband).
//
// Both models route all data through *platter.Disk, so bytes written
// are really stored and the simulated clock advances consistently.
package smr

import (
	"fmt"
	"sync"
	"time"

	"sealdb/internal/invariant"
	"sealdb/internal/platter"
)

// Drive is the device interface the storage backends program against.
type Drive interface {
	// WriteAt writes p at off and returns the simulated device time
	// consumed, including any internal read-modify-write.
	WriteAt(p []byte, off int64) (time.Duration, error)
	// ReadAt fills p from off.
	ReadAt(p []byte, off int64) (time.Duration, error)
	// Free tells the drive the extent no longer holds valid data.
	// Fixed-band drives ignore it (a drive-managed disk gets no
	// trim); the raw drive uses it to retire validity.
	Free(off, length int64) error
	// Guard returns the size of the damage window a write leaves
	// downstream (0 for drives without write-anywhere shingling
	// constraints). Hosts writing an extent incrementally must keep
	// this many bytes after it unoccupied.
	Guard() int64
	// Capacity is the addressable size in bytes.
	Capacity() int64
	// HostBytesWritten is the total payload the host has written.
	HostBytesWritten() int64
	// Disk exposes the underlying platter for stats and tracing.
	Disk() *platter.Disk
}

// AWA returns the auxiliary write amplification of a drive: device
// bytes physically written divided by host bytes written. It is 1.0
// for a drive that never rewrites data internally.
func AWA(d Drive) float64 {
	host := d.HostBytesWritten()
	if host == 0 {
		return 1
	}
	return float64(d.Disk().Stats().BytesWritten) / float64(host)
}

// ---------------------------------------------------------------------------
// Fixed-band drive

// FixedBandDrive emulates a conventional (drive-managed) SMR disk
// with fixed bands and a persistent media cache, the architecture
// the paper's §II-C describes: writes at a band's write pointer
// stream through; any other write lands in the media cache (a
// reserved region at the end of the surface) and is applied to its
// band later by a cleaning pass that reads the band's valid prefix
// and rewrites it with every cached write for that band merged in —
// one read-modify-write per dirty band, whose latency and write
// amplification surface on subsequent operations exactly as the
// paper's "bimodal behavior" of cached SMR drives.
type FixedBandDrive struct {
	disk     *platter.Disk
	bandSize int64
	// usable is the host-addressable capacity; the region beyond it
	// is the media cache.
	usable     int64
	cacheStart int64

	mu       sync.Mutex
	wp       []int64 // per-band write pointer (valid bytes from band start); guarded by mu
	host     int64   // host payload bytes written; guarded by mu
	rmws     int64   // number of band cleaning (read-modify-write) episodes; guarded by mu
	cachePos int64   // append cursor within the media cache region; guarded by mu

	staged      int64 // writes staged into the media cache; guarded by mu
	stagedBytes int64 // guarded by mu
	cleanBytes  int64 // bytes rewritten by cleaning passes; guarded by mu

	// onClean, when set, observes every cleaning episode: the band,
	// the bytes rewritten, and the device time consumed. Called with
	// the drive lock held; the observer must not call back into the
	// drive. guarded by mu
	onClean func(band, bytes int64, d time.Duration)

	buffered   map[int64][]bufWrite // band -> pending cached writes; guarded by mu
	dirtyOrder []int64              // bands in FIFO dirty order; guarded by mu
}

type bufWrite struct {
	off  int64 // absolute device offset
	data []byte
}

// maxDirtyBands bounds the media cache: when more bands are dirty,
// the oldest is cleaned. Small, like real drives under sustained
// random writes.
const maxDirtyBands = 4

// NewFixedBand creates a fixed-band drive over disk with the given
// band size. A slice at the end of the surface (1/32 of it, at least
// two bands) is reserved as the media cache; Capacity reports the
// remaining host-addressable space.
func NewFixedBand(disk *platter.Disk, bandSize int64) *FixedBandDrive {
	if bandSize <= 0 {
		panic("smr: non-positive band size")
	}
	cache := disk.Capacity() / 32
	if cache < 2*bandSize {
		cache = 2 * bandSize
	}
	usable := (disk.Capacity() - cache) / bandSize * bandSize
	if usable <= 0 {
		panic("smr: disk too small for band size plus media cache")
	}
	n := usable / bandSize
	return &FixedBandDrive{
		disk:       disk,
		bandSize:   bandSize,
		usable:     usable,
		cacheStart: usable,
		wp:         make([]int64, n),
		buffered:   make(map[int64][]bufWrite),
	}
}

// BandSize returns the fixed band size in bytes.
func (d *FixedBandDrive) BandSize() int64 { return d.bandSize }

// Guard implements Drive: a banded drive isolates bands with its own
// built-in guard regions, so host writes leave no damage window.
func (d *FixedBandDrive) Guard() int64 { return 0 }

// Capacity implements Drive: the host-addressable space, excluding
// the media cache region.
func (d *FixedBandDrive) Capacity() int64 { return d.usable }

// Disk implements Drive.
func (d *FixedBandDrive) Disk() *platter.Disk { return d.disk }

// HostBytesWritten implements Drive.
func (d *FixedBandDrive) HostBytesWritten() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.host
}

// CacheStart returns the raw-disk offset where the media-cache
// region begins. Physical accesses at or beyond this offset are
// media-cache traffic, not band-resident data — the tracer uses this
// to classify per-op I/O as cache hits.
func (d *FixedBandDrive) CacheStart() int64 { return d.cacheStart }

// RMWCount returns how many band read-modify-write episodes occurred.
func (d *FixedBandDrive) RMWCount() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rmws
}

// MediaCacheStats describes the drive's persistent-cache activity:
// how many writes were staged into the media cache, and what the
// cleaning passes rewrote to apply them.
type MediaCacheStats struct {
	StagedWrites int64 `json:"staged_writes"`
	StagedBytes  int64 `json:"staged_bytes"`
	Cleans       int64 `json:"cleans"`
	CleanBytes   int64 `json:"clean_bytes"`
	DirtyBands   int   `json:"dirty_bands"`
}

// MediaCacheStats returns the media-cache counters.
func (d *FixedBandDrive) MediaCacheStats() MediaCacheStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return MediaCacheStats{
		StagedWrites: d.staged,
		StagedBytes:  d.stagedBytes,
		Cleans:       d.rmws,
		CleanBytes:   d.cleanBytes,
		DirtyBands:   len(d.buffered),
	}
}

// SetCleanObserver installs fn to observe every cleaning episode.
// fn runs with the drive lock held and must not call back into the
// drive. Passing nil removes the observer.
func (d *FixedBandDrive) SetCleanObserver(fn func(band, bytes int64, dur time.Duration)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onClean = fn
}

// ReadAt implements Drive. Reads have no SMR constraints, but a read
// touching a band with pending cached writes forces that band to be
// cleaned first — the cache-cleaning latency readers observe on real
// DM-SMR drives.
func (d *FixedBandDrive) ReadAt(p []byte, off int64) (time.Duration, error) {
	d.mu.Lock()
	var total time.Duration
	if len(d.buffered) > 0 && len(p) > 0 {
		first := off / d.bandSize
		last := (off + int64(len(p)) - 1) / d.bandSize
		for b := first; b <= last; b++ {
			if _, dirty := d.buffered[b]; dirty {
				dt, err := d.cleanBand(b)
				total += dt
				if err != nil {
					d.mu.Unlock()
					return total, err
				}
			}
		}
	}
	d.mu.Unlock()
	dt, err := d.disk.ReadAt(p, off)
	return total + dt, err
}

// Free implements Drive. A drive-managed disk receives no trim
// information, so this is a no-op: write pointers stay high and later
// reuse of the space pays read-modify-write, exactly the behaviour
// the paper measures for LevelDB on SMR.
func (d *FixedBandDrive) Free(off, length int64) error { return nil }

// WriteAt implements Drive. The write is split on band boundaries and
// each segment is applied under the band's sequential-write rule.
func (d *FixedBandDrive) WriteAt(p []byte, off int64) (time.Duration, error) {
	if off < 0 || off+int64(len(p)) > d.usable {
		return 0, fmt.Errorf("smr: write [%d,%d) outside host capacity %d", off, off+int64(len(p)), d.usable)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var total time.Duration
	for len(p) > 0 {
		band := off / d.bandSize
		bandStart := band * d.bandSize
		inBand := off - bandStart
		n := int64(len(p))
		if rem := d.bandSize - inBand; n > rem {
			n = rem
		}
		dt, err := d.writeSegment(band, bandStart, inBand, p[:n])
		total += dt
		if err != nil {
			return total, err
		}
		p = p[n:]
		off += n
	}
	return total, nil
}

// writeSegment applies one intra-band write. Caller holds d.mu.
func (d *FixedBandDrive) writeSegment(band, bandStart, inBand int64, p []byte) (time.Duration, error) {
	n := int64(len(p))
	d.host += n
	wp := d.wp[band]
	if _, dirty := d.buffered[band]; !dirty {
		if inBand == wp {
			// Sequential append at the write pointer: stream through.
			dt, err := d.disk.WriteAt(p, bandStart+inBand)
			if err == nil {
				d.wp[band] = inBand + n
				if invariant.Enabled {
					invariant.Assert(d.wp[band] >= wp && d.wp[band] <= d.bandSize,
						"band %d write pointer %d not in [%d,%d]", band, d.wp[band], wp, d.bandSize)
				}
			}
			return dt, err
		}
		if inBand > wp {
			// Forward of the pointer: shingling only damages
			// downstream, so the drive streams forward from the
			// pointer, padding the gap with zeros in the same pass.
			pad := make([]byte, inBand-wp+n)
			copy(pad[inBand-wp:], p)
			dt, err := d.disk.WriteAt(pad, bandStart+wp)
			if err == nil {
				d.wp[band] = inBand + n
				if invariant.Enabled {
					invariant.Assert(d.wp[band] >= wp && d.wp[band] <= d.bandSize,
						"band %d write pointer %d not in [%d,%d]", band, d.wp[band], wp, d.bandSize)
				}
			}
			return dt, err
		}
	}

	// Behind the pointer (or the band already has cached writes):
	// stage the write in the media cache; a later cleaning pass
	// applies every cached write of the band in one read-modify-write.
	total, err := d.cacheAppend(p)
	if err != nil {
		return total, err
	}
	d.staged++
	d.stagedBytes += n
	if _, dirty := d.buffered[band]; !dirty {
		d.dirtyOrder = append(d.dirtyOrder, band)
	}
	d.buffered[band] = append(d.buffered[band], bufWrite{off: bandStart + inBand, data: append([]byte(nil), p...)})
	if len(d.dirtyOrder) > maxDirtyBands {
		victim := d.dirtyOrder[0]
		dt, err := d.cleanBand(victim)
		total += dt
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// cacheAppend charges a sequential append into the media cache
// region. Caller holds d.mu.
func (d *FixedBandDrive) cacheAppend(p []byte) (time.Duration, error) {
	region := d.disk.Capacity() - d.cacheStart
	if d.cachePos+int64(len(p)) > region {
		d.cachePos = 0 // ring wrap; old entries were cleaned long ago
	}
	dt, err := d.disk.WriteAt(p, d.cacheStart+d.cachePos)
	if err == nil {
		d.cachePos += int64(len(p))
	}
	return dt, err
}

// cleanBand applies a band's cached writes with one read-modify-write
// of its valid prefix. Caller holds d.mu.
func (d *FixedBandDrive) cleanBand(band int64) (time.Duration, error) {
	writes := d.buffered[band]
	delete(d.buffered, band)
	for i, b := range d.dirtyOrder {
		if b == band {
			d.dirtyOrder = append(d.dirtyOrder[:i], d.dirtyOrder[i+1:]...)
			break
		}
	}
	if len(writes) == 0 {
		return 0, nil
	}
	d.rmws++
	bandStart := band * d.bandSize
	wp := d.wp[band]
	newLen := wp
	for _, w := range writes {
		if end := w.off + int64(len(w.data)) - bandStart; end > newLen {
			newLen = end
		}
	}
	var total time.Duration
	merged := make([]byte, newLen)
	if wp > 0 {
		dt, err := d.disk.ReadAt(merged[:wp], bandStart)
		total += dt
		if err != nil {
			return total, err
		}
	}
	for _, w := range writes {
		copy(merged[w.off-bandStart:], w.data)
	}
	dt, err := d.disk.WriteAt(merged, bandStart)
	total += dt
	if err != nil {
		return total, err
	}
	if invariant.Enabled {
		invariant.Assert(newLen >= wp && newLen <= d.bandSize,
			"band %d clean shrank or overflowed the band: %d not in [%d,%d]", band, newLen, wp, d.bandSize)
	}
	d.wp[band] = newLen
	d.cleanBytes += newLen
	if d.onClean != nil {
		d.onClean(band, newLen, total)
	}
	return total, nil
}

// Flush cleans every dirty band (test hook and shutdown barrier).
func (d *FixedBandDrive) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.dirtyOrder) > 0 {
		if _, err := d.cleanBand(d.dirtyOrder[0]); err != nil {
			return err
		}
	}
	return nil
}

// ResetBand rewinds the write pointer of the given band to zero, the
// equivalent of a ZBC zone reset. A host-managed policy (e.g. the
// SMRDB baseline's dedicated bands) uses this to recycle a band for
// sequential rewriting without read-modify-write.
func (d *FixedBandDrive) ResetBand(band int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if band >= 0 && band < int64(len(d.wp)) {
		d.wp[band] = 0
		if _, dirty := d.buffered[band]; dirty {
			delete(d.buffered, band)
			for i, b := range d.dirtyOrder {
				if b == band {
					d.dirtyOrder = append(d.dirtyOrder[:i], d.dirtyOrder[i+1:]...)
					break
				}
			}
		}
	}
}

// WritePointer returns the write pointer of the band containing off,
// for tests and diagnostics.
func (d *FixedBandDrive) WritePointer(off int64) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wp[off/d.bandSize]
}

// ---------------------------------------------------------------------------
// Raw (Caveat-Scriptor) drive

// OverlapError reports a host write that would destroy valid data.
type OverlapError struct {
	Off, Len int64 // attempted write
	Hit      Extent
}

func (e *OverlapError) Error() string {
	return fmt.Sprintf("smr: write [%d,%d) (plus guard) would destroy valid extent [%d,%d)",
		e.Off, e.Off+e.Len, e.Hit.Off, e.Hit.Off+e.Hit.Len)
}

// Extent is a half-open byte range [Off, Off+Len) on the device.
type Extent struct {
	Off, Len int64
}

// End returns the first byte past the extent.
func (e Extent) End() int64 { return e.Off + e.Len }

func (e Extent) String() string { return fmt.Sprintf("[%d,%d)", e.Off, e.End()) }

// RawDrive is a primitive host-managed SMR drive with no physical
// bands: shingled tracks only. Writing [s,e) damages the following
// guard window, so the drive verifies that neither the written span
// nor its damage window intersects valid data, then marks the span
// valid. Free retires validity. No internal rewriting ever happens.
type RawDrive struct {
	disk  *platter.Disk
	guard int64

	mu    sync.Mutex
	valid extentSet // guarded by mu
	host  int64     // guarded by mu
}

// NewRaw creates a raw drive whose writes damage the guard bytes that
// follow them.
func NewRaw(disk *platter.Disk, guard int64) *RawDrive {
	if guard < 0 {
		panic("smr: negative guard")
	}
	return &RawDrive{disk: disk, guard: guard}
}

// Guard returns the damage-window size in bytes.
func (d *RawDrive) Guard() int64 { return d.guard }

// Capacity implements Drive.
func (d *RawDrive) Capacity() int64 { return d.disk.Capacity() }

// Disk implements Drive.
func (d *RawDrive) Disk() *platter.Disk { return d.disk }

// HostBytesWritten implements Drive.
func (d *RawDrive) HostBytesWritten() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.host
}

// ReadAt implements Drive.
func (d *RawDrive) ReadAt(p []byte, off int64) (time.Duration, error) {
	return d.disk.ReadAt(p, off)
}

// WriteAt implements Drive. The write and its damage window must not
// touch valid data; on success the written span becomes valid.
func (d *RawDrive) WriteAt(p []byte, off int64) (time.Duration, error) {
	n := int64(len(p))
	d.mu.Lock()
	span := Extent{Off: off, Len: n + d.guard}
	if end := off + span.Len; end > d.disk.Capacity() {
		// The damage window may run off the end of the surface; clip.
		span.Len = d.disk.Capacity() - off
	}
	if hit, ok := d.valid.intersect(span); ok {
		d.mu.Unlock()
		return 0, &OverlapError{Off: off, Len: n, Hit: hit}
	}
	d.valid.insert(Extent{Off: off, Len: n})
	d.host += n
	if invariant.Enabled {
		invariant.Assert(d.valid.wellFormed(), "raw drive validity set malformed after insert of [%d,%d)", off, off+n)
	}
	d.mu.Unlock()
	return d.disk.WriteAt(p, off)
}

// Free implements Drive: the host declares [off, off+length) invalid.
func (d *RawDrive) Free(off, length int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.valid.remove(Extent{Off: off, Len: length})
	if invariant.Enabled {
		invariant.Assert(d.valid.wellFormed(), "raw drive validity set malformed after free of [%d,%d)", off, off+length)
	}
	return nil
}

// ValidBytes returns the total number of valid bytes on the drive.
func (d *RawDrive) ValidBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.valid.total()
}

// ValidExtents returns a copy of the valid extents in address order.
func (d *RawDrive) ValidExtents() []Extent {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Extent(nil), d.valid...)
}

// Unwrapper is implemented by drive middleware (retry layers, fault
// injectors) that wrap another Drive. Base follows the chain.
type Unwrapper interface {
	Unwrap() Drive
}

// Base returns the innermost Drive in a middleware chain: the first
// one that does not implement Unwrapper. Use it before asserting a
// concrete drive type (e.g. *FixedBandDrive), so observers and
// allocators keep working when the drive is wrapped.
func Base(d Drive) Drive {
	for {
		u, ok := d.(Unwrapper)
		if !ok {
			return d
		}
		inner := u.Unwrap()
		if inner == nil {
			return d
		}
		d = inner
	}
}
