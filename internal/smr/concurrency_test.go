package smr

import (
	"sync"
	"testing"
)

// TestFixedBandConcurrentAccess hammers a fixed-band drive from many
// goroutines; run with -race. Each goroutine owns a disjoint band
// range so data assertions stay simple.
func TestFixedBandConcurrentAccess(t *testing.T) {
	bandSize := int64(64 << 10)
	d := NewFixedBand(newDisk(16<<20), bandSize)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * 2 * bandSize
			buf := make([]byte, 4096)
			for i := range buf {
				buf[i] = byte(w)
			}
			for i := 0; i < 50; i++ {
				off := base + int64(i%16)*4096
				if _, err := d.WriteAt(buf, off); err != nil {
					t.Error(err)
					return
				}
				got := make([]byte, 4096)
				if _, err := d.ReadAt(got, off); err != nil {
					t.Error(err)
					return
				}
				if got[0] != byte(w) {
					t.Errorf("worker %d read back %d", w, got[0])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestRawDriveConcurrentAppenders: goroutines appending to disjoint
// regions never trip the overlap checker.
func TestRawDriveConcurrentAppenders(t *testing.T) {
	d := NewRaw(newDisk(16<<20), 4096)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * (1 << 20)
			pos := base
			buf := make([]byte, 1024)
			for i := 0; i < 100; i++ {
				if _, err := d.WriteAt(buf, pos); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				pos += int64(len(buf))
			}
		}(w)
	}
	wg.Wait()
	if v := d.ValidBytes(); v != workers*100*1024 {
		t.Errorf("valid bytes %d", v)
	}
}
