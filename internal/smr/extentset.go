package smr

import "sort"

// extentSet is an ordered list of disjoint, non-adjacent extents.
// Adjacent extents are merged on insert so the set stays compact even
// when a long stream is written in many small appends.
type extentSet []Extent

// search returns the index of the first extent with End > off.
func (s extentSet) search(off int64) int {
	return sort.Search(len(s), func(i int) bool { return s[i].End() > off })
}

// intersect reports whether e overlaps any extent in the set.
func (s extentSet) intersect(e Extent) (Extent, bool) {
	if e.Len <= 0 {
		return Extent{}, false
	}
	i := s.search(e.Off)
	if i < len(s) && s[i].Off < e.End() {
		return s[i], true
	}
	return Extent{}, false
}

// insert adds e, merging with overlapping or adjacent extents.
func (s *extentSet) insert(e Extent) {
	if e.Len <= 0 {
		return
	}
	set := *s
	// Find the run [i, j) of extents that overlap or touch e.
	i := sort.Search(len(set), func(k int) bool { return set[k].End() >= e.Off })
	j := i
	for j < len(set) && set[j].Off <= e.End() {
		j++
	}
	if i < j {
		if set[i].Off < e.Off {
			e.Len += e.Off - set[i].Off
			e.Off = set[i].Off
		}
		if end := set[j-1].End(); end > e.End() {
			e.Len = end - e.Off
		}
	}
	set = append(set[:i], append([]Extent{e}, set[j:]...)...)
	*s = set
}

// remove subtracts e from the set, splitting extents as needed.
func (s *extentSet) remove(e Extent) {
	if e.Len <= 0 {
		return
	}
	set := *s
	i := s.search(e.Off)
	var out extentSet
	out = append(out, set[:i]...)
	for ; i < len(set) && set[i].Off < e.End(); i++ {
		cur := set[i]
		if cur.Off < e.Off {
			out = append(out, Extent{Off: cur.Off, Len: e.Off - cur.Off})
		}
		if cur.End() > e.End() {
			out = append(out, Extent{Off: e.End(), Len: cur.End() - e.End()})
		}
	}
	out = append(out, set[i:]...)
	*s = out
}

// wellFormed reports whether the set upholds its structural
// invariant: positive-length extents, strictly ordered, disjoint and
// non-adjacent (adjacent runs must have been merged on insert). Used
// by the sealdb_invariants build of the raw drive.
func (s extentSet) wellFormed() bool {
	for i, e := range s {
		if e.Len <= 0 {
			return false
		}
		if i > 0 && s[i-1].End() >= e.Off {
			return false
		}
	}
	return true
}

// total returns the summed length of all extents.
func (s extentSet) total() int64 {
	var t int64
	for _, e := range s {
		t += e.Len
	}
	return t
}
