module sealdb

go 1.24
