package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sealdb/internal/lsm"
	"sealdb/internal/obs"
	"sealdb/internal/sealclient"
	"sealdb/internal/server"
	"sealdb/internal/ycsb"
)

// ScaleSchema identifies the BENCH_scaling.json layout so CI can
// validate artifacts across revisions.
const ScaleSchema = "sealdb-bench-scaling/v1"

// ScaleReport is the top-level -scale output: one sweep of client
// counts per workload against a fresh server each point.
type ScaleReport struct {
	Schema    string          `json:"schema"`
	Records   int64           `json:"records"`
	Ops       int             `json:"ops_per_point"`
	ValueSize int             `json:"value_size"`
	Seed      int64           `json:"seed"`
	Workloads []ScaleWorkload `json:"workloads"`
}

// ScaleWorkload is one workload's scaling curve.
type ScaleWorkload struct {
	Name   string       `json:"workload"`
	Points []ScalePoint `json:"points"`
}

// ScalePoint is one (workload, client count) measurement.
type ScalePoint struct {
	Clients        int     `json:"clients"`
	Ops            int     `json:"ops"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	OpsPerSec      float64 `json:"ops_per_sec"`
	P50NS          int64   `json:"p50_ns"`
	P99NS          int64   `json:"p99_ns"`
	// LockWaitNS is the total time all goroutines spent blocked on
	// profiled locks during the window, summed over sites.
	LockWaitNS int64 `json:"lock_wait_ns"`
	// LockWaitShare is LockWaitNS over the window's total client time
	// (clients x elapsed): the fraction of client capacity burned
	// waiting on locks. The number the big-mutex split must drive down.
	LockWaitShare float64 `json:"lock_wait_share"`
	TopLockSite   string  `json:"top_lock_site"`
}

// latStore wraps a ycsb.Store, timing every operation into a shared
// histogram. Each client goroutine gets its own wrapper; the
// histogram is concurrency-safe.
type latStore struct {
	st  ycsb.Store
	lat *obs.Histogram
}

func (s latStore) Put(k, v []byte) error {
	t0 := time.Now()
	err := s.st.Put(k, v)
	s.lat.Observe(time.Since(t0).Nanoseconds())
	return err
}

func (s latStore) Get(k []byte) ([]byte, error) {
	t0 := time.Now()
	v, err := s.st.Get(k)
	s.lat.Observe(time.Since(t0).Nanoseconds())
	return v, err
}

func (s latStore) ScanN(start []byte, n int) (int, error) {
	t0 := time.Now()
	c, err := s.st.ScanN(start, n)
	s.lat.Observe(time.Since(t0).Nanoseconds())
	return c, err
}

// runScale sweeps client counts over TCP for each workload, writing
// the scaling report to outPath and a summary table to stdout. Every
// point gets a fresh store and server so the curve measures scaling,
// not accumulated compaction debt.
func runScale(outPath, workloads, clientList string, records int64, ops, valueSize int, seed int64) {
	counts, err := parseClientCounts(clientList)
	if err != nil {
		fatal(err)
	}
	if ops <= 0 {
		ops = 10000
	}
	rep := ScaleReport{
		Schema:    ScaleSchema,
		Records:   records,
		Ops:       ops,
		ValueSize: valueSize,
		Seed:      seed,
	}

	fmt.Printf("# scale: workloads %s, clients %v, %d records, %d ops/point\n\n",
		workloads, counts, records, ops)
	fmt.Printf("%-8s %8s %10s %12s %10s %10s %10s  %s\n",
		"workload", "clients", "ops/s", "p50", "p99", "lockwait", "share", "top site")

	for _, wlName := range strings.Split(workloads, ",") {
		w, err := findWorkload(strings.TrimSpace(wlName))
		if err != nil {
			fatal(err)
		}
		sw := ScaleWorkload{Name: w.Name}
		for _, n := range counts {
			p := runScalePoint(w, records, ops, valueSize, seed, n)
			sw.Points = append(sw.Points, p)
			fmt.Printf("%-8s %8d %10.0f %12v %10v %10v %9.1f%%  %s\n",
				w.Name, p.Clients, p.OpsPerSec,
				time.Duration(p.P50NS).Round(time.Microsecond),
				time.Duration(p.P99NS).Round(time.Microsecond),
				time.Duration(p.LockWaitNS).Round(time.Microsecond),
				p.LockWaitShare*100, p.TopLockSite)
		}
		rep.Workloads = append(rep.Workloads, sw)
		fmt.Println()
	}

	f, err := os.Create(outPath)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("# wrote %s (%d workloads x %d client counts)\n",
		outPath, len(rep.Workloads), len(counts))
}

// runScalePoint measures one (workload, clients) cell: fresh DB and
// server, N pooled connections, N runner goroutines, lock profiling
// bracketing the measured run.
func runScalePoint(w ycsb.Workload, records int64, ops, valueSize int, seed int64, clients int) ScalePoint {
	db, err := lsm.Open(lsm.DefaultConfig(lsm.ModeSEALDB))
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	srv, err := server.Serve(db, "127.0.0.1:0", server.Config{})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	cl, err := sealclient.Dial(srv.Addr().String(), sealclient.Options{Conns: clients})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	lat := obs.NewHistogram()
	beforeWait := map[string]int64{}
	beforeHold := map[string]int64{}
	for _, s := range obs.ContentionProfile() {
		beforeWait[s.Name] = s.TotalWaitNS
		beforeHold[s.Name] = s.TotalHoldNS
	}
	obs.SetLockProfiling(true)
	n, elapsed := runYCSBParallel(w, records, ops, valueSize, seed, clients,
		dbStore{db}, func() ycsb.Store { return latStore{st: netStore{cl}, lat: lat} })
	obs.SetLockProfiling(false)

	// Rank sites by wait accrued in the window; when nothing waited
	// (e.g. GOMAXPROCS=1 serializes the clients), fall back to hold
	// time so the hottest lock is still named.
	var waitTotal, topWait, topHold int64
	var topSite string
	for _, s := range obs.ContentionProfile() {
		waitDelta := s.TotalWaitNS - beforeWait[s.Name]
		holdDelta := s.TotalHoldNS - beforeHold[s.Name]
		waitTotal += waitDelta
		if waitDelta > topWait || (topWait == 0 && holdDelta > topHold) {
			topWait, topHold, topSite = waitDelta, holdDelta, s.Name
		}
	}

	snap := lat.Snapshot()
	p := ScalePoint{
		Clients:        clients,
		Ops:            n,
		ElapsedSeconds: elapsed.Seconds(),
		OpsPerSec:      float64(n) / elapsed.Seconds(),
		P50NS:          snap.P50,
		P99NS:          snap.P99,
		LockWaitNS:     waitTotal,
		TopLockSite:    topSite,
	}
	if budget := int64(clients) * elapsed.Nanoseconds(); budget > 0 {
		p.LockWaitShare = float64(waitTotal) / float64(budget)
	}
	return p
}

func parseClientCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad client count %q (want positive integers, e.g. 1,2,4,8)", part)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("no client counts in %q", s)
	}
	return counts, nil
}
