package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"sealdb/internal/lsm"
	"sealdb/internal/sealclient"
	"sealdb/internal/server"
	"sealdb/internal/ycsb"
)

// runYCSBNet compares the same YCSB workload run in-process against a
// *lsm.DB and over TCP through `sealdb serve` + sealclient: the cost
// of the serving layer in one table. Unlike the figure harnesses,
// which report simulated device time, both phases here are measured in
// wall-clock time — the network stack is real, so only real time makes
// the two comparable.
func runYCSBNet(wlName string, records int64, ops, valueSize int, seed int64, clients int) {
	w, err := findWorkload(wlName)
	if err != nil {
		fatal(err)
	}
	if ops <= 0 {
		ops = 10000
	}
	if clients <= 0 {
		clients = 4
	}

	fmt.Printf("# ycsbnet: workload %s, %d records, %d ops, %d client goroutines\n\n",
		w.Name, records, ops, clients)

	inOps, inElapsed := runYCSBInProcess(w, records, ops, valueSize, seed, clients)
	netOps, netElapsed, coal := runYCSBNetworked(w, records, ops, valueSize, seed, clients)

	inRate := float64(inOps) / inElapsed.Seconds()
	netRate := float64(netOps) / netElapsed.Seconds()
	fmt.Printf("%-12s %10s %12s %12s\n", "path", "ops", "wall time", "ops/s")
	fmt.Printf("%-12s %10d %12v %12.0f\n", "in-process", inOps, inElapsed.Round(time.Millisecond), inRate)
	fmt.Printf("%-12s %10d %12v %12.0f\n", "networked", netOps, netElapsed.Round(time.Millisecond), netRate)
	fmt.Printf("\nnetworked/in-process throughput: %.2fx\n", netRate/inRate)
	if coal.Groups > 0 {
		fmt.Printf("group commits: %d groups for %d write requests (%.2f writes/group)\n",
			coal.Groups, coal.Writes, float64(coal.Writes)/float64(coal.Groups))
	}
}

// runYCSBParallel loads a store and drives it with `clients` runner
// goroutines, each with its own seed, returning total operations and
// wall-clock elapsed. makeStore returns one ycsb.Store per goroutine
// (in-process they share the DB handle; networked they share the
// pooled client).
func runYCSBParallel(w ycsb.Workload, records int64, ops, valueSize int, seed int64, clients int,
	load ycsb.Store, makeStore func() ycsb.Store) (int, time.Duration) {
	loader := ycsb.NewRunner(load, valueSize, seed)
	if err := loader.Load(records); err != nil {
		fatal(err)
	}

	perClient := ops / clients
	var wg sync.WaitGroup
	total := 0
	var mu sync.Mutex
	start := time.Now()
	for i := 0; i < clients; i++ {
		r := ycsb.NewRunner(makeStore(), valueSize, seed+int64(i)+1)
		// Seat the runner's record count so request keys hit the range
		// the shared loader populated.
		r.SetRecordCount(records)
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.Run(w, perClient)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sealdb-bench: ycsbnet worker:", err)
				return
			}
			mu.Lock()
			total += res.Ops
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total, time.Since(start)
}

func runYCSBInProcess(w ycsb.Workload, records int64, ops, valueSize int, seed int64, clients int) (int, time.Duration) {
	db, err := lsm.Open(lsm.DefaultConfig(lsm.ModeSEALDB))
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	st := dbStore{db}
	return runYCSBParallel(w, records, ops, valueSize, seed, clients, st, func() ycsb.Store { return st })
}

// coalesceStats is the slice of the STATS payload the summary needs.
type coalesceStats struct {
	Groups int64
	Writes int64
}

func runYCSBNetworked(w ycsb.Workload, records int64, ops, valueSize int, seed int64, clients int) (int, time.Duration, coalesceStats) {
	db, err := lsm.Open(lsm.DefaultConfig(lsm.ModeSEALDB))
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	srv, err := server.Serve(db, "127.0.0.1:0", server.Config{})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	cl, err := sealclient.Dial(srv.Addr().String(), sealclient.Options{Conns: clients})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	// Load in-process (store setup is not what's being measured), run
	// through the client.
	n, d := runYCSBParallel(w, records, ops, valueSize, seed, clients,
		dbStore{db}, func() ycsb.Store { return netStore{cl} })

	var coal coalesceStats
	if raw, err := cl.Stats(); err == nil {
		var p struct {
			Server struct {
				CoalescedGroups int64 `json:"coalesced_groups"`
				CoalescedWrites int64 `json:"coalesced_writes"`
			} `json:"server"`
		}
		if json.Unmarshal(raw, &p) == nil {
			coal = coalesceStats{Groups: p.Server.CoalescedGroups, Writes: p.Server.CoalescedWrites}
		}
	}
	return n, d, coal
}

// dbStore adapts *lsm.DB to ycsb.Store.
type dbStore struct{ db *lsm.DB }

func (s dbStore) Put(k, v []byte) error        { return s.db.Put(k, v) }
func (s dbStore) Get(k []byte) ([]byte, error) { return s.db.Get(k) }
func (s dbStore) ScanN(start []byte, n int) (int, error) {
	kvs, err := s.db.Scan(start, n)
	return len(kvs), err
}

// netStore adapts a sealclient.Client to ycsb.Store, so the same
// runner drives the store through the wire protocol.
type netStore struct{ cl *sealclient.Client }

func (s netStore) Put(k, v []byte) error        { return s.cl.Put(k, v) }
func (s netStore) Get(k []byte) ([]byte, error) { return s.cl.Get(k) }
func (s netStore) ScanN(start []byte, n int) (int, error) {
	kvs, err := s.cl.Scan(start, n)
	return len(kvs), err
}

func findWorkload(name string) (ycsb.Workload, error) {
	for _, w := range ycsb.CoreWorkloads() {
		if strings.EqualFold(w.Name, name) {
			return w, nil
		}
	}
	return ycsb.Workload{}, fmt.Errorf("unknown workload %q (want A-F)", name)
}
