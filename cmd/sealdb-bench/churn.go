package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"sealdb/internal/kv"
	"sealdb/internal/lsm"
	"sealdb/internal/obs"
	"sealdb/internal/traceanalyze"
)

// ChurnSchema identifies the BENCH_churn.json layout so CI can
// validate artifacts across revisions.
const ChurnSchema = "sealdb-bench-churn/v1"

// ChurnReport is the -churn output: a timeline of storage-surface
// samples under sustained overwrite/delete/scan load, plus the bounds
// the run was held to. The run is fully deterministic: every sample
// point is on the simulated device clock, and p50/p99 are device-time
// latencies, so the timeline is reproducible byte-for-byte per seed.
type ChurnReport struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Keys   int    `json:"keys"`
	// TargetDeviceSeconds is the simulated device time the run churns
	// for; Ops is how many operations that took.
	TargetDeviceSeconds float64 `json:"target_device_seconds"`
	Ops                 int64   `json:"ops"`

	// Bounds and the observed extremes over the steady state (samples
	// after the first full pass over the keyspace).
	BoundSA    float64 `json:"bound_sa"`
	BoundP99NS int64   `json:"bound_p99_ns"`
	MaxSA      float64 `json:"max_sa"`
	MaxP99NS   int64   `json:"max_p99_ns"`
	Passed     bool    `json:"passed"`

	Samples []ChurnSample `json:"samples"`
}

// ChurnSample is one observatory reading on the device clock.
type ChurnSample struct {
	DeviceSeconds float64 `json:"device_seconds"`
	Ops           int64   `json:"ops"`
	// Warmup marks samples taken before the keyspace has been fully
	// written once; SA is meaningless while logical bytes ramp, so
	// warmup samples are exempt from the bounds.
	Warmup bool `json:"warmup,omitempty"`

	PhysicalBytes    int64   `json:"physical_bytes"`
	LogicalLiveBytes int64   `json:"logical_live_bytes"`
	DeadBytes        int64   `json:"dead_bytes"`
	SA               float64 `json:"sa"`

	FragHoles   int     `json:"frag_holes"`
	FragIndex   float64 `json:"frag_index"`
	LargestFree int64   `json:"largest_free"`

	// Per-window device-time latency quantiles (reset each sample).
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`

	// Heat distribution: bands carrying allocation, the hottest band's
	// EWMA heat, and its share of the total heat (1.0 = all writes
	// landing in one band; 1/bands = perfectly spread).
	HeatBands    int     `json:"heat_bands"`
	HeatMax      float64 `json:"heat_max"`
	HeatTopShare float64 `json:"heat_top_share"`
}

type churnOptions struct {
	out      string
	dumpDir  string // optional raw smrtrace dump written at the end
	minutes  float64
	keys     int
	seed     int64
	boundSA  float64
	boundP99 time.Duration
}

// runChurn drives a seeded sustained overwrite+delete+scan workload
// until the simulated device clock has advanced by the target, sampling
// the storage-surface observatory on a fixed device-time interval. The
// value log stays off so the offline analyzer's logical-byte recompute
// (and hence its SA cross-check) is exact on the -churndump output.
func runChurn(o churnOptions) {
	cfg := lsm.Config{
		Mode:     lsm.ModeSEALDB,
		Geometry: lsm.ScaledGeometry(16*kv.KiB, 1*kv.GiB),
		Seed:     o.seed,
	}
	cfg.JournalCapacity = 1 << 17
	cfg.SurfaceSnapshotInterval = 20 * time.Millisecond // device time
	db, err := lsm.Open(cfg)
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	var base *traceanalyze.Baseline
	if o.dumpDir != "" {
		base = traceanalyze.Begin(db)
	}

	busy := func() int64 { return int64(db.Device().Disk.Stats().BusyTime) }
	targetNS := int64(o.minutes * 60 * 1e9)
	startNS := busy()
	sampleEvery := targetNS / 60 // ~60 samples per run
	if sampleEvery < 1e6 {
		sampleEvery = 1e6
	}

	rep := ChurnReport{
		Schema:              ChurnSchema,
		Seed:                o.seed,
		Keys:                o.keys,
		TargetDeviceSeconds: float64(targetNS) / 1e9,
		BoundSA:             o.boundSA,
		BoundP99NS:          o.boundP99.Nanoseconds(),
	}
	rng := rand.New(rand.NewSource(o.seed))
	val := make([]byte, 1024)
	key := func(i int) []byte { return []byte(fmt.Sprintf("churn-%08d", i)) }

	fmt.Printf("# churn: %d keys, %.1fs of device time, seed %d, SA bound %.2f, p99 bound %v\n",
		o.keys, rep.TargetDeviceSeconds, o.seed, o.boundSA, o.boundP99)
	fmt.Printf("%10s %10s %8s %8s %8s %10s %10s %6s\n",
		"device_s", "ops", "SA", "frag", "holes", "p99", "physical", "bands")

	lat := obs.NewHistogram()
	var ops int64
	nextSample := startNS + sampleEvery
	sample := func(now int64) {
		snap := lat.Snapshot()
		lat = obs.NewHistogram() // per-window quantiles
		sp := db.SpaceProfile()
		bp := db.BandProfile()
		s := ChurnSample{
			DeviceSeconds:    float64(now-startNS) / 1e9,
			Ops:              ops,
			Warmup:           ops < int64(o.keys),
			PhysicalBytes:    sp.PhysicalBytes,
			LogicalLiveBytes: sp.LogicalLiveBytes,
			DeadBytes:        sp.SurfaceDeadBytes,
			SA:               sp.SpaceAmplification,
			FragHoles:        sp.Frag.Holes,
			FragIndex:        sp.Frag.Index,
			LargestFree:      sp.Frag.LargestFree,
			P50NS:            snap.P50,
			P99NS:            snap.P99,
		}
		var heatSum float64
		for _, b := range bp.Bands {
			if b.Alloc > 0 {
				s.HeatBands++
			}
			heatSum += b.Heat
			if b.Heat > s.HeatMax {
				s.HeatMax = b.Heat
			}
		}
		if heatSum > 0 {
			s.HeatTopShare = s.HeatMax / heatSum
		}
		rep.Samples = append(rep.Samples, s)
		if !s.Warmup {
			if s.SA > rep.MaxSA {
				rep.MaxSA = s.SA
			}
			if s.P99NS > rep.MaxP99NS {
				rep.MaxP99NS = s.P99NS
			}
		}
		fmt.Printf("%10.3f %10d %8.3f %8.3f %8d %10v %10s %6d\n",
			s.DeviceSeconds, s.Ops, s.SA, s.FragIndex, s.FragHoles,
			time.Duration(s.P99NS).Round(time.Microsecond), human(s.PhysicalBytes), s.HeatBands)
	}

	// The op mix: mostly overwrites of a zipf-less uniform working set
	// (every key rewritten again and again — the defragmentation
	// stressor), a delete every 8th op (holes for the free list), a
	// short scan every 16th (read path under churn).
	maxOps := int64(o.keys) * 10000 // runaway backstop
	for busy()-startNS < targetNS && ops < maxOps {
		k := rng.Intn(o.keys)
		t0 := busy()
		switch {
		case ops%16 == 15:
			if _, err := db.Scan(key(k), 20); err != nil {
				fatal(err)
			}
		case ops%8 == 7:
			if err := db.Delete(key(k)); err != nil {
				fatal(err)
			}
		default:
			n := 200 + rng.Intn(len(val)-200)
			v := val[:n]
			for j := range v {
				v[j] = byte(rng.Int())
			}
			if err := db.Put(key(k), v); err != nil {
				fatal(err)
			}
		}
		lat.Observe(busy() - t0)
		ops++
		if now := busy(); now >= nextSample {
			sample(now)
			nextSample = now + sampleEvery
		}
	}
	sample(busy())
	rep.Ops = ops
	rep.Passed = rep.MaxSA <= rep.BoundSA && rep.MaxP99NS <= rep.BoundP99NS

	if o.dumpDir != "" {
		if err := traceanalyze.Collect(db, base).Write(o.dumpDir); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote raw dump %s (analyze with: smrtrace -analyze %s)\n", o.dumpDir, o.dumpDir)
	}
	f, err := os.Create(o.out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("# wrote %s (%d samples, %d ops)\n", o.out, len(rep.Samples), ops)

	if !rep.Passed {
		fatal(fmt.Errorf("churn bounds violated: max SA %.3f (bound %.2f), max p99 %v (bound %v)",
			rep.MaxSA, rep.BoundSA, time.Duration(rep.MaxP99NS), time.Duration(rep.BoundP99NS)))
	}
	fmt.Printf("# bounds held: max SA %.3f <= %.2f, max p99 %v <= %v\n",
		rep.MaxSA, rep.BoundSA, time.Duration(rep.MaxP99NS), time.Duration(rep.BoundP99NS))
}
