// Command sealdb-bench regenerates the tables and figures of the
// paper's evaluation section. Each figure prints a summary table to
// stdout; layout/latency series can additionally be dumped as CSV
// for plotting.
//
// Usage:
//
//	sealdb-bench -fig 8                 # one figure
//	sealdb-bench -fig 2,3,8,9,10,11,12,13,14 -table 2
//	sealdb-bench -all                   # everything
//	sealdb-bench -all -mb 192 -sst 262144   # bigger run
//	sealdb-bench -fig 2 -csv fig2.csv   # scatter data for plotting
//
// All timings are simulated device time (deterministic); see
// EXPERIMENTS.md for the mapping to the paper's results.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sealdb/internal/bench"
	"sealdb/internal/kv"
	"sealdb/internal/lsm"
	"sealdb/internal/obs"
)

func main() {
	var (
		figs    = flag.String("fig", "", "comma-separated figure numbers to run (2,3,8,9,10,11,12,13,14)")
		table   = flag.Int("table", 0, "table number to run (2)")
		all     = flag.Bool("all", false, "run every table and figure")
		mb      = flag.Int64("mb", 0, "load size in MiB (default: harness default)")
		sst     = flag.Int64("sst", 0, "SSTable size in bytes (sets the geometry scale; default 64 KiB)")
		paper   = flag.Bool("paperscale", false, "use the paper's full-scale geometry (4 MiB SSTables; slow)")
		ops     = flag.Int("ops", 0, "read/YCSB operations per phase")
		seed    = flag.Int64("seed", 1, "workload seed")
		csvPath = flag.String("csv", "", "write figure series data (figs 2, 10, 11, 13) as CSV to this file")
		gc      = flag.Bool("gc", false, "also run the dynamic-band GC ablation (DefragmentBands)")
		latency = flag.Bool("latency", false, "also run the per-operation latency profile")
		serve   = flag.String("serve", "", "serve /metrics and /debug for the store currently under test on this address (e.g. :8080)")

		ycsbjson = flag.String("ycsbjson", "", "run the load phase and YCSB A-F on every store and write machine-readable results (ops/s, p50/p99, WA/AWA per workload) to this JSON file")
		valsizes = flag.String("valuesizes", "", "comma-separated value sizes in bytes for -ycsbjson (e.g. 64,1024,65536,1048576); every store runs the full workload matrix per size")

		ycsbnet  = flag.String("ycsbnet", "", "run this YCSB workload (A-F) both in-process and through a sealdb server over TCP, comparing throughput")
		netrecs  = flag.Int64("netrecords", 20000, "records to load for -ycsbnet and -scale")
		netconns = flag.Int("netclients", 4, "client goroutines (and pooled connections) for -ycsbnet")

		scale    = flag.String("scale", "", "sweep client counts over TCP per workload and write the scaling report (ops/s, p50/p99, lock-wait share) to this JSON file")
		scalecl  = flag.String("scaleclients", "1,2,4,8", "comma-separated client counts for -scale")
		scalewls = flag.String("scaleworkloads", "A,C", "comma-separated YCSB workloads for -scale")

		churn     = flag.String("churn", "", "run the sustained-churn scenario (seeded overwrite+delete+scan on simulated device time, sampling the storage-surface observatory) and write the timeline to this JSON file")
		churnmins = flag.Float64("churnminutes", 2, "simulated device minutes of sustained churn for -churn")
		churnkeys = flag.Int("churnkeys", 4000, "working-set key count for -churn")
		churndump = flag.String("churndump", "", "also write a raw smrtrace dump of the churn run to this directory (for smrtrace -analyze)")
		churnsa   = flag.Float64("churnsa", 6, "steady-state space-amplification bound for -churn; exceeding it fails the run")
		churnp99  = flag.Duration("churnp99", 250*time.Millisecond, "steady-state per-op device-time p99 bound for -churn")
	)
	flag.Parse()

	if *churn != "" {
		runChurn(churnOptions{
			out: *churn, dumpDir: *churndump, minutes: *churnmins,
			keys: *churnkeys, seed: seed1(*seed),
			boundSA: *churnsa, boundP99: *churnp99,
		})
		return
	}
	if *scale != "" {
		runScale(*scale, *scalewls, *scalecl, *netrecs, *ops, 1024, seed1(*seed))
		return
	}
	if *ycsbnet != "" {
		runYCSBNet(*ycsbnet, *netrecs, *ops, 1024, seed1(*seed), *netconns)
		return
	}

	o := bench.DefaultOptions()
	o.Seed = seed1(*seed)
	if *sst > 0 {
		o.Geometry = lsm.ScaledGeometry(*sst, diskFor(*sst))
	}
	if *paper {
		o.Geometry = lsm.PaperGeometry()
	}
	if *mb > 0 {
		o.LoadMB = *mb
	}
	if *ops > 0 {
		o.ReadOps = *ops
		o.YCSBOps = *ops
	}

	// The harness opens a fresh store per experiment; -serve follows
	// whichever one is currently under test.
	var current atomic.Pointer[lsm.DB]
	if *serve != "" {
		o.Observe = func(db *lsm.DB) { current.Store(db) }
		h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			db := current.Load()
			if db == nil {
				http.Error(w, "no store under test yet", http.StatusServiceUnavailable)
				return
			}
			db.ObsHandler().ServeHTTP(w, r)
		})
		srv, err := obs.Serve(*serve, h)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("# serving http://%s/metrics for the store under test\n", srv.Addr)
	}

	want := map[string]bool{}
	if *all {
		for _, f := range []string{"2", "3", "8", "9", "10", "11", "12", "13", "14"} {
			want[f] = true
		}
	}
	for _, f := range strings.Split(*figs, ",") {
		if f = strings.TrimSpace(f); f != "" {
			want[f] = true
		}
	}
	if *ycsbjson != "" {
		for _, s := range strings.Split(*valsizes, ",") {
			if s = strings.TrimSpace(s); s == "" {
				continue
			}
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				fatal(fmt.Errorf("bad -valuesizes entry %q", s))
			}
			o.ValueSizes = append(o.ValueSizes, n)
		}
		rep, err := bench.RunYCSBReport(o)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*ycsbjson)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteYCSBJSON(f, rep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote %s (%d stores x %d phases)\n", *ycsbjson, len(rep.Stores), len(rep.Stores[0].Phases))
		return
	}

	runTable2 := *all || *table == 2
	if len(want) == 0 && !runTable2 && !*gc && !*latency {
		flag.Usage()
		os.Exit(2)
	}

	var csv *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		csv = f
	}

	fmt.Printf("# sealdb-bench: SSTable %s, band %s, load %d MiB, value %d B, seed %d\n\n",
		human(o.Geometry.SSTableSize), human(o.Geometry.BandSize), o.LoadMB, o.ValueSize, o.Seed)

	if runTable2 {
		rows, err := bench.RunTable2(o)
		if err != nil {
			fatal(err)
		}
		bench.PrintTable2(os.Stdout, rows)
		fmt.Println()
	}
	if want["2"] {
		r, err := bench.RunLayout(o, lsm.ModeLevelDB)
		if err != nil {
			fatal(err)
		}
		bench.PrintLayout(os.Stdout, "Fig 2", r)
		if csv != nil {
			bench.WriteLayoutCSV(csv, r)
		}
		fmt.Println()
	}
	if want["3"] {
		rows, err := bench.RunFig3(o)
		if err != nil {
			fatal(err)
		}
		bench.PrintFig3(os.Stdout, rows)
		fmt.Println()
	}
	if want["8"] {
		rows, err := bench.RunFig8(o)
		if err != nil {
			fatal(err)
		}
		bench.PrintMicroRows(os.Stdout, "Fig 8", rows)
		fmt.Println()
	}
	if want["9"] {
		rows, err := bench.RunFig9(o)
		if err != nil {
			fatal(err)
		}
		bench.PrintFig9(os.Stdout, rows)
		fmt.Println()
	}
	if want["10"] {
		profiles, err := bench.RunFig10(o)
		if err != nil {
			fatal(err)
		}
		bench.PrintFig10(os.Stdout, profiles)
		if csv != nil {
			bench.WriteFig10CSV(csv, profiles)
		}
		fmt.Println()
	}
	if want["11"] {
		r, err := bench.RunLayout(o, lsm.ModeSEALDB)
		if err != nil {
			fatal(err)
		}
		bench.PrintLayout(os.Stdout, "Fig 11", r)
		if csv != nil {
			bench.WriteLayoutCSV(csv, r)
		}
		fmt.Println()
	}
	if want["12"] {
		rows, err := bench.RunFig12(o)
		if err != nil {
			fatal(err)
		}
		bench.PrintFig12(os.Stdout, rows)
		fmt.Println()
	}
	if want["13"] {
		res, points, err := bench.RunFig13(o)
		if err != nil {
			fatal(err)
		}
		bench.PrintFig13(os.Stdout, res)
		if csv != nil {
			fmt.Fprintf(csv, "band,offset_mb,length_kb\n")
			for _, p := range points {
				fmt.Fprintf(csv, "%d,%.3f,%.3f\n", p.Compaction, p.OffsetMB, p.LengthKB)
			}
		}
		fmt.Println()
	}
	if want["14"] {
		rows, err := bench.RunFig14(o)
		if err != nil {
			fatal(err)
		}
		bench.PrintMicroRows(os.Stdout, "Fig 14", rows)
		fmt.Println()
	}
	if *gc {
		res, err := bench.RunGCAblation(o)
		if err != nil {
			fatal(err)
		}
		bench.PrintGCAblation(os.Stdout, res)
		fmt.Println()
	}
	if *latency {
		rows, err := bench.RunLatencyProfile(o)
		if err != nil {
			fatal(err)
		}
		bench.PrintLatencyRows(os.Stdout, rows)
		fmt.Println()
	}
}

func seed1(s int64) int64 {
	if s == 0 {
		return 1
	}
	return s
}

func diskFor(sst int64) int64 {
	cap := 2048 * sst // plenty of headroom over any load
	if cap < 1*kv.GiB {
		cap = 1 * kv.GiB
	}
	return cap
}

func human(n int64) string {
	switch {
	case n >= kv.GiB:
		return fmt.Sprintf("%.1f GiB", float64(n)/float64(kv.GiB))
	case n >= kv.MiB:
		return fmt.Sprintf("%.1f MiB", float64(n)/float64(kv.MiB))
	case n >= kv.KiB:
		return fmt.Sprintf("%.1f KiB", float64(n)/float64(kv.KiB))
	}
	return fmt.Sprintf("%d B", n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sealdb-bench:", err)
	os.Exit(1)
}
