package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"sealdb"
	"sealdb/internal/obs"
	"sealdb/internal/server"
	"sealdb/internal/ycsb"
)

// runServe is the `sealdb serve` subcommand: open a store, optionally
// preload it, and serve the wire protocol on a TCP address until
// SIGINT/SIGTERM. With -obs it also exposes the HTTP observability
// endpoints (now including the serving-layer series and /debug/conns).
//
//	sealdb serve -addr :7070 -mode sealdb -load 100000 -obs :8080
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":7070", "TCP listen address for the wire protocol")
		mode     = fs.String("mode", "sealdb", "engine mode: leveldb, leveldb+sets, smrdb, sealdb")
		load     = fs.Int64("load", 0, "records to load (random order) before serving")
		vsize    = fs.Int("value", 1024, "value size in bytes for -load")
		seed     = fs.Int64("seed", 1, "load seed")
		obsAddr  = fs.String("obs", "", "also serve /metrics and /debug endpoints on this HTTP address")
		conns    = fs.Int("conns", 0, "max concurrent connections (0 = default)")
		inflight = fs.Int("inflight", 0, "max unanswered requests per connection (0 = default)")

		lockprof  = fs.Bool("lockprofile", false, "start with lock-contention profiling on (also togglable via /debug/contention?profile=on)")
		mutexfrac = fs.Int("mutexfrac", -1, "runtime mutex profile fraction for /debug/pprof/mutex (-1 = leave default)")
		blockrate = fs.Int("blockrate", -1, "runtime block profile rate in ns for /debug/pprof/block (-1 = leave default)")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}

	obs.SetLockProfiling(*lockprof)
	obs.SetProfileRates(*mutexfrac, *blockrate)

	m, err := parseMode(*mode)
	if err != nil {
		fatal(err)
	}
	db, err := sealdb.Open(sealdb.DefaultConfig(m))
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	if *load > 0 {
		runner := ycsb.NewRunner(adapter{db}, *vsize, *seed)
		if err := runner.LoadRandom(*load); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %d records\n", *load)
	}

	srv, err := server.Serve(db, *addr, server.Config{
		MaxConns:    *conns,
		MaxInflight: *inflight,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving sealdb wire protocol on %s (mode %s)\n", srv.Addr(), *mode)

	if *obsAddr != "" {
		osrv, err := obs.Serve(*obsAddr, srv.Handler())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("observability on http://%s/metrics (plus /debug/contention, /debug/runtime, /debug/pprof/, /debug/conns, /debug/levels, /debug/sets, /debug/events)\n", osrv.Addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("draining...")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sealdb: close:", err)
	}
	fmt.Println("stopped")
}
