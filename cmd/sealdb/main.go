// Command sealdb is a small interactive driver for the store: it
// loads a database on an emulated SMR drive, runs a batch of
// operations from the command line, and reports the engine and
// device statistics — a quick way to poke at the system without
// writing code.
//
// Usage:
//
//	sealdb -mode sealdb -load 100000 -get user000000000042
//	sealdb -mode leveldb -load 50000 -scan user000000000100:10 -stats
//	sealdb -mode sealdb -load 200000 -ycsb A -ops 10000
//
// The serve subcommand instead exposes the store over the wire
// protocol for sealclient consumers (see DESIGN.md, "Serving layer"):
//
//	sealdb serve -addr :7070 -mode sealdb -load 100000 -obs :8080
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sealdb"
	"sealdb/internal/kv"
	"sealdb/internal/obs"
	"sealdb/internal/smr"
	"sealdb/internal/ycsb"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	var (
		mode   = flag.String("mode", "sealdb", "engine mode: leveldb, leveldb+sets, smrdb, sealdb")
		load   = flag.Int64("load", 0, "records to load (random order) before running operations")
		vsize  = flag.Int("value", 1024, "value size in bytes")
		get    = flag.String("get", "", "key to read")
		put    = flag.String("put", "", "key=value to write")
		del    = flag.String("del", "", "key to delete")
		scan   = flag.String("scan", "", "start[:count] range scan")
		wl     = flag.String("ycsb", "", "YCSB workload to run (A-F)")
		ops    = flag.Int("ops", 10000, "operations for -ycsb")
		stats  = flag.Bool("stats", false, "print engine and device statistics")
		verify = flag.Bool("verify", false, "run the integrity check (fsck) before exiting")
		defrag = flag.Bool("defrag", false, "run the dynamic-band GC pass (sealdb mode only)")
		serve  = flag.String("serve", "", "serve /metrics and /debug endpoints on this address (e.g. :8080) after running the operations")
		seed   = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	m, err := parseMode(*mode)
	if err != nil {
		fatal(err)
	}
	db, err := sealdb.Open(sealdb.DefaultConfig(m))
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	runner := ycsb.NewRunner(adapter{db}, *vsize, *seed)
	if *load > 0 {
		start := db.Device().Disk.Stats().BusyTime
		if err := runner.LoadRandom(*load); err != nil {
			fatal(err)
		}
		d := db.Device().Disk.Stats().BusyTime - start
		fmt.Printf("loaded %d records in %v simulated (%.0f ops/s)\n",
			*load, d.Round(1e6), float64(*load)/d.Seconds())
	}

	if *put != "" {
		k, v, ok := strings.Cut(*put, "=")
		if !ok {
			fatal(fmt.Errorf("-put wants key=value"))
		}
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			fatal(err)
		}
		fmt.Printf("put %q\n", k)
	}
	if *get != "" {
		v, err := db.Get([]byte(*get))
		switch err {
		case nil:
			fmt.Printf("get %q -> %d bytes", *get, len(v))
			if len(v) <= 64 {
				fmt.Printf(" (%q)", v)
			}
			fmt.Println()
		case sealdb.ErrNotFound:
			fmt.Printf("get %q -> not found\n", *get)
		default:
			fatal(err)
		}
	}
	if *del != "" {
		if err := db.Delete([]byte(*del)); err != nil {
			fatal(err)
		}
		fmt.Printf("deleted %q\n", *del)
	}
	if *scan != "" {
		start, countS, ok := strings.Cut(*scan, ":")
		count := 10
		if ok {
			if n, err := strconv.Atoi(countS); err == nil {
				count = n
			}
		}
		kvs, err := db.Scan([]byte(start), count)
		if err != nil {
			fatal(err)
		}
		for _, e := range kvs {
			fmt.Printf("  %q (%d bytes)\n", e.Key, len(e.Value))
		}
		fmt.Printf("scan %q -> %d entries\n", start, len(kvs))
	}
	if *wl != "" {
		w, err := findWorkload(*wl)
		if err != nil {
			fatal(err)
		}
		start := db.Device().Disk.Stats().BusyTime
		res, err := runner.Run(w, *ops)
		if err != nil {
			fatal(err)
		}
		d := db.Device().Disk.Stats().BusyTime - start
		fmt.Printf("workload %s: %d ops in %v simulated (%.0f ops/s); reads %d, updates %d, inserts %d, scans %d, rmw %d\n",
			w.Name, res.Ops, d.Round(1e6), float64(res.Ops)/d.Seconds(),
			res.Reads, res.Updates, res.Inserts, res.Scans, res.RMWs)
	}

	if *defrag {
		res, err := db.DefragmentBands(0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("defrag: moved %d sets (%s), fragments %s -> %s\n",
			res.SetsMoved, human(res.BytesMoved), human(res.FragmentsBefore), human(res.FragmentsAfter))
	}
	if *verify {
		if err := db.VerifyIntegrity(); err != nil {
			fatal(fmt.Errorf("integrity check failed: %w", err))
		}
		fmt.Println("integrity: ok")
	}
	if *stats {
		printStats(db)
	}

	if *serve != "" {
		srv, err := obs.Serve(*serve, db.ObsHandler())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving http://%s/metrics (and /debug/levels, /debug/sets, /debug/events); ctrl-c to stop\n", srv.Addr)
		select {}
	}
}

// adapter wires the public DB to the ycsb.Store interface.
type adapter struct{ db *sealdb.DB }

func (a adapter) Put(k, v []byte) error        { return a.db.Put(k, v) }
func (a adapter) Get(k []byte) ([]byte, error) { return a.db.Get(k) }
func (a adapter) ScanN(start []byte, n int) (int, error) {
	kvs, err := a.db.Scan(start, n)
	return len(kvs), err
}

var _ ycsb.Store = adapter{}

func parseMode(s string) (sealdb.Mode, error) {
	switch strings.ToLower(s) {
	case "leveldb":
		return sealdb.ModeLevelDB, nil
	case "leveldb+sets", "sets":
		return sealdb.ModeLevelDBSets, nil
	case "smrdb":
		return sealdb.ModeSMRDB, nil
	case "sealdb":
		return sealdb.ModeSEALDB, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func findWorkload(name string) (ycsb.Workload, error) {
	for _, w := range ycsb.CoreWorkloads() {
		if strings.EqualFold(w.Name, name) {
			return w, nil
		}
	}
	return ycsb.Workload{}, fmt.Errorf("unknown workload %q (want A-F)", name)
}

func printStats(db *sealdb.DB) {
	st := db.Stats()
	amp := db.Amplification()
	ds := db.Device().Disk.Stats()
	fmt.Println("--- engine ---")
	fmt.Printf("user writes: %d ops, %s\n", st.UserWrites, human(st.UserBytes))
	fmt.Printf("flushes: %d (%s); compactions: %d (read %s, wrote %s); trivial moves: %d\n",
		st.FlushCount, human(st.FlushBytes), st.CompactionCount,
		human(st.CompactionReadBytes), human(st.CompactionWriteBytes), st.TrivialMoves)
	fmt.Printf("gets: %d (%d hits)\n", st.Gets, st.GetHits)
	fmt.Println("--- amplification ---")
	fmt.Printf("WA %.2f  AWA %.3f  MWA %.2f\n", amp.WA, amp.AWA, amp.MWA)
	fmt.Println("--- device ---")
	fmt.Printf("read %s in %d ops, wrote %s in %d ops, %d seeks, busy %v (AWA %.3f)\n",
		human(ds.BytesRead), ds.ReadOps, human(ds.BytesWritten), ds.WriteOps,
		ds.Seeks, ds.BusyTime.Round(1e6), smr.AWA(db.Device().Drive))
}

func human(n int64) string {
	switch {
	case n >= kv.GiB:
		return fmt.Sprintf("%.2f GiB", float64(n)/float64(kv.GiB))
	case n >= kv.MiB:
		return fmt.Sprintf("%.2f MiB", float64(n)/float64(kv.MiB))
	case n >= kv.KiB:
		return fmt.Sprintf("%.2f KiB", float64(n)/float64(kv.KiB))
	}
	return fmt.Sprintf("%d B", n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sealdb:", err)
	os.Exit(1)
}
