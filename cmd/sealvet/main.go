// Command sealvet is SEALDB's project lint suite: a multichecker
// over the custom analyzers in internal/analysis that mechanically
// enforce the engine's determinism, locking, extent-accounting,
// error-handling, and metric-registration contracts.
//
// Usage:
//
//	go run ./cmd/sealvet            # analyze the whole module
//	go run ./cmd/sealvet ./internal/...
//	go run ./cmd/sealvet -list      # describe the analyzers
//	go run ./cmd/sealvet -notests ./internal/smr
//
// sealvet exits non-zero if any analyzer reports a finding. It must
// run from inside the module (the loader resolves module import
// paths through the go command). The framework is a stdlib-only
// mirror of golang.org/x/tools/go/analysis, so there is no
// -vettool integration; CI runs the binary directly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sealdb/internal/analysis"
	"sealdb/internal/analysis/sealvet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, factored so tests can pin the exit code
// and the summary line without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sealvet", flag.ExitOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	noTests := fs.Bool("notests", false, "exclude in-package _test.go files from analysis")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Parse(args)

	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "sealvet: "+format+"\n", a...)
		return 1
	}

	analyzers := sealvet.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				filtered = append(filtered, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			return fail("unknown analyzer %q (use -list)", n)
		}
		analyzers = filtered
	}

	root, err := findModuleRoot()
	if err != nil {
		return fail("%v", err)
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		return fail("%v", err)
	}
	if err := os.Chdir(root); err != nil {
		return fail("%v", err)
	}

	roots := fs.Args()
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	loader := analysis.NewLoader()
	var pkgs []*analysis.Package
	for _, pattern := range roots {
		dir := strings.TrimSuffix(pattern, "/...")
		dir = filepath.Clean(dir)
		abs, err := filepath.Abs(dir)
		if err != nil {
			return fail("%v", err)
		}
		if strings.HasSuffix(pattern, "/...") || pattern == "./..." {
			loaded, err := loader.LoadTree(root, modPath, abs, !*noTests)
			if err != nil {
				return fail("loading %s: %v", pattern, err)
			}
			pkgs = append(pkgs, loaded...)
		} else {
			rel, err := filepath.Rel(root, abs)
			if err != nil {
				return fail("%v", err)
			}
			importPath := modPath
			if rel != "." {
				importPath = modPath + "/" + filepath.ToSlash(rel)
			}
			pkg, err := loader.Load(abs, importPath, !*noTests)
			if err != nil {
				return fail("loading %s: %v", pattern, err)
			}
			pkgs = append(pkgs, pkg)
		}
	}

	findings := analysis.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	fmt.Fprintf(stderr, "sealvet: %d diagnostics from %d analyzers\n", len(findings), len(analyzers))
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s (run inside the module)", dir)
		}
		dir = parent
	}
}
