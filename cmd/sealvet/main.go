// Command sealvet is SEALDB's project lint suite: a multichecker
// over the custom analyzers in internal/analysis that mechanically
// enforce the engine's determinism, locking, extent-accounting,
// error-handling, and metric-registration contracts.
//
// Usage:
//
//	go run ./cmd/sealvet            # analyze the whole module
//	go run ./cmd/sealvet ./internal/...
//	go run ./cmd/sealvet -list      # describe the analyzers
//	go run ./cmd/sealvet -notests ./internal/smr
//
// sealvet exits non-zero if any analyzer reports a finding. It must
// run from inside the module (the loader resolves module import
// paths through the go command). The framework is a stdlib-only
// mirror of golang.org/x/tools/go/analysis, so there is no
// -vettool integration; CI runs the binary directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sealdb/internal/analysis"
	"sealdb/internal/analysis/sealvet"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	noTests := flag.Bool("notests", false, "exclude in-package _test.go files from analysis")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := sealvet.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				filtered = append(filtered, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fatalf("unknown analyzer %q (use -list)", n)
		}
		analyzers = filtered
	}

	root, err := findModuleRoot()
	if err != nil {
		fatalf("%v", err)
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.Chdir(root); err != nil {
		fatalf("%v", err)
	}

	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	loader := analysis.NewLoader()
	var pkgs []*analysis.Package
	for _, pattern := range roots {
		dir := strings.TrimSuffix(pattern, "/...")
		dir = filepath.Clean(dir)
		abs, err := filepath.Abs(dir)
		if err != nil {
			fatalf("%v", err)
		}
		if strings.HasSuffix(pattern, "/...") || pattern == "./..." {
			loaded, err := loader.LoadTree(root, modPath, abs, !*noTests)
			if err != nil {
				fatalf("loading %s: %v", pattern, err)
			}
			pkgs = append(pkgs, loaded...)
		} else {
			rel, err := filepath.Rel(root, abs)
			if err != nil {
				fatalf("%v", err)
			}
			importPath := modPath
			if rel != "." {
				importPath = modPath + "/" + filepath.ToSlash(rel)
			}
			pkg, err := loader.Load(abs, importPath, !*noTests)
			if err != nil {
				fatalf("loading %s: %v", pattern, err)
			}
			pkgs = append(pkgs, pkg)
		}
	}

	findings := analysis.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sealvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("sealvet: no go.mod found above %s (run inside the module)", dir)
		}
		dir = parent
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sealvet: "+format+"\n", args...)
	os.Exit(1)
}
