package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

// chdirBack restores the working directory after run() chdirs to the
// module root.
func chdirBack(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
}

// TestExitCodeAndSummaryOnFindings pins the contract CI depends on: a
// sweep with findings exits 1, prints each finding, and ends with the
// "N diagnostics from M analyzers" summary. The guardedby fixture is
// a package full of intentional violations.
func TestExitCodeAndSummaryOnFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages")
	}
	chdirBack(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only", "guardedby", "./internal/analysis/guardedby/testdata/src/guarded"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has intentional violations)\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[guardedby]") {
		t.Errorf("stdout lacks guardedby findings:\n%s", stdout.String())
	}
	sum := stderr.String()
	if !strings.Contains(sum, "diagnostics from 1 analyzers") {
		t.Errorf("stderr lacks summary line: %q", sum)
	}
}

// TestExitCodeZeroOnCleanPackage checks a clean target exits 0 and
// still prints the summary.
func TestExitCodeZeroOnCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages")
	}
	chdirBack(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only", "guardedby", "./internal/kv"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "0 diagnostics from 1 analyzers") {
		t.Errorf("stderr lacks clean summary: %q", stderr.String())
	}
}

// TestListPrintsEveryAnalyzer checks -list names the full suite,
// including the concurrency analyzers.
func TestListPrintsEveryAnalyzer(t *testing.T) {
	chdirBack(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"atomicfield", "errpath", "extentpair", "guardedby", "lockorder", "noclock", "obsreg"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output lacks %q:\n%s", name, stdout.String())
		}
	}
}

// TestUnknownAnalyzerFails checks -only with a bogus name is an error.
func TestUnknownAnalyzerFails(t *testing.T) {
	chdirBack(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nonesuch"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), fmt.Sprintf("unknown analyzer %q", "nonesuch")) {
		t.Errorf("stderr = %q, want unknown-analyzer error", stderr.String())
	}
}
