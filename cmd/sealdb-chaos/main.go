// Command sealdb-chaos runs a seeded chaos campaign against a full
// SEALDB stack — TCP server, pipelined clients, per-worker network
// fault proxies, fault-injected device — and checks the recorded
// history for safety violations: lost acked writes, phantom or stale
// reads, session regressions, unsticky degraded mode.
//
// The whole campaign derives from -seed: two runs with the same flags
// produce byte-identical histories, so any reported violation replays
// exactly. Exit status is 1 when the checker finds violations (or the
// campaign itself fails), 0 on a clean run.
//
// Usage:
//
//	sealdb-chaos -seed 7 -rounds 10 -clients 4 -faults crash,net
//	sealdb-chaos -seed 7 -out history.json   # dump the canonical history
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sealdb/internal/chaos"
	"sealdb/internal/chaos/history"
	"sealdb/internal/invariant"
)

func main() {
	fs := flag.NewFlagSet("sealdb-chaos", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "campaign seed; same seed, same flags => identical history")
	rounds := fs.Int("rounds", 6, "serve/fault/recover/check cycles")
	clients := fs.Int("clients", 4, "concurrent workers, one connection each")
	ticks := fs.Int("ticks", 10, "lockstep ticks per round")
	burst := fs.Int("burst", 6, "writes per writer tick")
	keys := fs.Int("keys", 8, "keys per worker shard")
	valueSize := fs.Int("value-size", 512, "padded value size in bytes")
	vlogMode := fs.Bool("vlog", false, "run the engine in value-separated mode (64 B threshold): faults land between vlog appends and WAL commits")
	faults := fs.String("faults", "all", "fault classes: all, none, or comma list of crash,net,disk,flip")
	out := fs.String("out", "", "write the canonical history JSON to this file")
	lockEdges := fs.String("lock-edges", "", "write observed lock-order edges JSON to this file (populated in -tags sealdb_invariants builds)")
	quiet := fs.Bool("q", false, "suppress per-round progress")
	fs.Parse(os.Args[1:])

	fset, err := chaos.ParseFaults(*faults)
	if err != nil {
		fatal(err)
	}
	cfg := chaos.Config{
		Seed: *seed, Rounds: *rounds, Clients: *clients, Ticks: *ticks,
		Burst: *burst, KeysPerWorker: *keys, ValueSize: *valueSize,
		Vlog: *vlogMode, Faults: fset,
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}

	h, runErr := chaos.Run(cfg)
	if *lockEdges != "" {
		// In invariant builds the obs wrappers feed the lock-order
		// watchdog; dump what actually nested so CI can cross-check
		// the static '// lockorder:' declarations. Default builds
		// write an empty list.
		edges := invariant.LockOrderEdges()
		if edges == nil {
			edges = [][2]string{}
		}
		b, err := json.MarshalIndent(edges, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*lockEdges, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if h != nil && *out != "" {
		b, err := h.Canonical()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fatal(err)
		}
	}
	if runErr != nil {
		fatal(runErr)
	}

	hash, err := h.Hash()
	if err != nil {
		fatal(err)
	}
	ops := 0
	for i := range h.Rounds {
		ops += len(h.Rounds[i].Ops)
	}
	violations := history.Check(h)
	fmt.Printf("seed=%d rounds=%d ops=%d faults=%s hash=%s violations=%d\n",
		h.Seed, len(h.Rounds), ops, h.Faults, hash, len(violations))
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "VIOLATION: %s\n", v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sealdb-chaos:", err)
	os.Exit(1)
}
