// Command smrtrace loads a store while tracing every device access
// attributed to a compaction, and dumps the placement data behind the
// paper's layout figures (2, 11, 13) on stdout — as CSV by default,
// or as JSON lines with -format json.
//
// Usage:
//
//	smrtrace -mode leveldb -mb 32 > fig2.csv    # Figure 2
//	smrtrace -mode sealdb  -mb 32 > fig11.csv   # Figure 11
//	smrtrace -mode sealdb  -mb 32 -bands > fig13.csv
//	smrtrace -mode sealdb  -mb 32 -format json > fig11.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"sealdb/internal/bench"
	"sealdb/internal/lsm"
	"sealdb/internal/obs"
)

func main() {
	var (
		mode   = flag.String("mode", "sealdb", "engine mode: leveldb, leveldb+sets, smrdb, sealdb")
		mb     = flag.Int64("mb", 0, "load size in MiB")
		sst    = flag.Int64("sst", 0, "SSTable size in bytes")
		bands  = flag.Bool("bands", false, "dump the dynamic band census (Fig 13) instead of the write trace")
		format = flag.String("format", "csv", "output format: csv or json (JSON lines)")
		seed   = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()
	if *format != "csv" && *format != "json" {
		fmt.Fprintf(os.Stderr, "smrtrace: unknown format %q (want csv or json)\n", *format)
		os.Exit(2)
	}

	o := bench.DefaultOptions()
	o.Seed = *seed
	if *sst > 0 {
		o.Geometry = lsm.ScaledGeometry(*sst, 2048**sst)
	}
	if *mb > 0 {
		o.LoadMB = *mb
	}

	var m lsm.Mode
	switch *mode {
	case "leveldb":
		m = lsm.ModeLevelDB
	case "leveldb+sets":
		m = lsm.ModeLevelDBSets
	case "smrdb":
		m = lsm.ModeSMRDB
	case "sealdb":
		m = lsm.ModeSEALDB
	default:
		fmt.Fprintf(os.Stderr, "smrtrace: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	if *bands {
		if m != lsm.ModeSEALDB {
			fmt.Fprintln(os.Stderr, "smrtrace: -bands requires -mode sealdb")
			os.Exit(2)
		}
		res, points, err := bench.RunFig13(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smrtrace:", err)
			os.Exit(1)
		}
		bench.PrintFig13(os.Stderr, res)
		if *format == "json" {
			enc := obs.NewJSONLines(os.Stdout)
			for _, p := range points {
				if err := enc.Encode(p); err != nil {
					fmt.Fprintln(os.Stderr, "smrtrace:", err)
					os.Exit(1)
				}
			}
			return
		}
		fmt.Println("band,offset_mb,length_kb")
		for _, p := range points {
			fmt.Printf("%d,%.3f,%.3f\n", p.Compaction, p.OffsetMB, p.LengthKB)
		}
		return
	}

	r, err := bench.RunLayout(o, m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smrtrace:", err)
		os.Exit(1)
	}
	bench.PrintLayout(os.Stderr, "layout", r)
	if *format == "json" {
		enc := obs.NewJSONLines(os.Stdout)
		for _, p := range r.Points {
			if err := enc.Encode(p); err != nil {
				fmt.Fprintln(os.Stderr, "smrtrace:", err)
				os.Exit(1)
			}
		}
		return
	}
	bench.WriteLayoutCSV(os.Stdout, r)
}
