// Command smrtrace loads a store while tracing every device access
// attributed to a compaction, and dumps the placement data behind the
// paper's layout figures (2, 11, 13) on stdout — as CSV by default,
// or as JSON lines with -format json.
//
// Usage:
//
//	smrtrace -mode leveldb -mb 32 > fig2.csv    # Figure 2
//	smrtrace -mode sealdb  -mb 32 > fig11.csv   # Figure 11
//	smrtrace -mode sealdb  -mb 32 -bands > fig13.csv
//	smrtrace -mode sealdb  -mb 32 -format json > fig11.jsonl
//
// It is also the front end of the request-tracing analyzer:
//
//	smrtrace -mode sealdb -mb 8 -dump DIR   # traced run, write raw dump
//	smrtrace -analyze DIR                   # offline: heatmaps + WA/AWA report
//
// A dump directory holds meta.json (geometry and live counters),
// trace.jsonl (every physical access) and events.jsonl (the event
// journal, sampled span trees included); -analyze recomputes the
// amplification from the raw records and fails loudly if it disagrees
// with the live counters by more than 1%.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sealdb/internal/bench"
	"sealdb/internal/lsm"
	"sealdb/internal/obs"
	"sealdb/internal/traceanalyze"
	"sealdb/internal/ycsb"
)

func main() {
	var (
		mode   = flag.String("mode", "sealdb", "engine mode: leveldb, leveldb+sets, smrdb, sealdb")
		mb     = flag.Int64("mb", 0, "load size in MiB")
		sst    = flag.Int64("sst", 0, "SSTable size in bytes")
		bands  = flag.Bool("bands", false, "dump the dynamic band census (Fig 13) instead of the write trace")
		format = flag.String("format", "csv", "output format: csv or json (JSON lines)")
		seed   = flag.Int64("seed", 1, "workload seed")

		analyze = flag.String("analyze", "", "offline mode: analyze an existing dump directory and exit")
		dump    = flag.String("dump", "", "run a traced YCSB workload and write a raw dump (meta.json, trace.jsonl, events.jsonl) to this directory")
		ops     = flag.Int("ops", 2000, "workload operations for -dump")
		vthresh = flag.Int("valuethreshold", 0, "key–value separation threshold in bytes for -dump (0 = off): values at or above it go to the value log")
	)
	flag.Parse()

	if *analyze != "" {
		runAnalyze(*analyze)
		return
	}
	if *format != "csv" && *format != "json" {
		fmt.Fprintf(os.Stderr, "smrtrace: unknown format %q (want csv or json)\n", *format)
		os.Exit(2)
	}

	o := bench.DefaultOptions()
	o.Seed = *seed
	if *sst > 0 {
		o.Geometry = lsm.ScaledGeometry(*sst, 2048**sst)
	}
	if *mb > 0 {
		o.LoadMB = *mb
	}

	var m lsm.Mode
	switch *mode {
	case "leveldb":
		m = lsm.ModeLevelDB
	case "leveldb+sets":
		m = lsm.ModeLevelDBSets
	case "smrdb":
		m = lsm.ModeSMRDB
	case "sealdb":
		m = lsm.ModeSEALDB
	default:
		fmt.Fprintf(os.Stderr, "smrtrace: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	if *dump != "" {
		runDump(*dump, m, o, *ops, *vthresh)
		return
	}

	if *bands {
		if m != lsm.ModeSEALDB {
			fmt.Fprintln(os.Stderr, "smrtrace: -bands requires -mode sealdb")
			os.Exit(2)
		}
		res, points, err := bench.RunFig13(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smrtrace:", err)
			os.Exit(1)
		}
		bench.PrintFig13(os.Stderr, res)
		if *format == "json" {
			enc := obs.NewJSONLines(os.Stdout)
			for _, p := range points {
				if err := enc.Encode(p); err != nil {
					fmt.Fprintln(os.Stderr, "smrtrace:", err)
					os.Exit(1)
				}
			}
			return
		}
		fmt.Println("band,offset_mb,length_kb")
		for _, p := range points {
			fmt.Printf("%d,%.3f,%.3f\n", p.Compaction, p.OffsetMB, p.LengthKB)
		}
		return
	}

	r, err := bench.RunLayout(o, m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smrtrace:", err)
		os.Exit(1)
	}
	bench.PrintLayout(os.Stderr, "layout", r)
	if *format == "json" {
		enc := obs.NewJSONLines(os.Stdout)
		for _, p := range r.Points {
			if err := enc.Encode(p); err != nil {
				fmt.Fprintln(os.Stderr, "smrtrace:", err)
				os.Exit(1)
			}
		}
		return
	}
	bench.WriteLayoutCSV(os.Stdout, r)
}

// traceStore adapts *lsm.DB to ycsb.Store for the -dump workload.
type traceStore struct{ db *lsm.DB }

func (s traceStore) Put(k, v []byte) error        { return s.db.Put(k, v) }
func (s traceStore) Get(k []byte) ([]byte, error) { return s.db.Get(k) }
func (s traceStore) ScanN(start []byte, n int) (int, error) {
	kvs, err := s.db.Scan(start, n)
	return len(kvs), err
}

// runDump executes a traced load + YCSB-A window and writes the raw
// dump, then prints the analysis of what it just captured.
func runDump(dir string, m lsm.Mode, o bench.Options, ops, vthresh int) {
	cfg := lsm.Config{Mode: m, Geometry: o.Geometry, Seed: o.Seed}
	cfg.ValueThreshold = vthresh
	cfg.JournalCapacity = 1 << 16
	cfg.Trace = lsm.TraceConfig{Enabled: true, SampleEvery: 8}
	// Periodic observatory snapshots (device time) so the dump's event
	// stream carries band_snapshot batches for -analyze to reconcile.
	cfg.SurfaceSnapshotInterval = 5 * time.Millisecond
	db, err := lsm.Open(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	defer db.Close()

	base := traceanalyze.Begin(db)
	runner := ycsb.NewRunner(traceStore{db}, o.ValueSize, o.Seed)
	if err := runner.LoadRandom(o.Records()); err != nil {
		fatalf("load: %v", err)
	}
	if _, err := runner.Run(ycsb.WorkloadA, ops); err != nil {
		fatalf("workload: %v", err)
	}
	d := traceanalyze.Collect(db, base)
	if err := d.Write(dir); err != nil {
		fatalf("write dump: %v", err)
	}
	fmt.Fprintf(os.Stderr, "smrtrace: wrote %s (%d trace entries, %d events)\n",
		dir, len(d.Trace), len(d.Events))
	report(d)
}

// runAnalyze is the offline path: load a dump from disk and report.
func runAnalyze(dir string) {
	d, err := traceanalyze.ReadDump(dir)
	if err != nil {
		fatalf("%v", err)
	}
	report(d)
}

func report(d *traceanalyze.Dump) {
	rep := traceanalyze.Analyze(d)
	rep.WriteText(os.Stdout)
	if err := rep.Verify(0.01); err != nil {
		fatalf("%v", err)
	}
	fmt.Println("verify: live amplification matches recomputation within 1%")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "smrtrace: "+format+"\n", args...)
	os.Exit(1)
}
