package sealdb_test

import (
	"fmt"

	"sealdb"
)

// Batches apply atomically: either every mutation lands or none does,
// and the whole batch occupies one write-ahead-log record.
func ExampleBatch() {
	db, _ := sealdb.Open(sealdb.DefaultConfig(sealdb.ModeSEALDB))
	defer db.Close()

	b := sealdb.NewBatch()
	b.Put([]byte("alpha"), []byte("1"))
	b.Put([]byte("beta"), []byte("2"))
	b.Delete([]byte("alpha"))
	if err := db.Apply(b); err != nil {
		panic(err)
	}
	_, errA := db.Get([]byte("alpha"))
	vB, _ := db.Get([]byte("beta"))
	fmt.Println(errA == sealdb.ErrNotFound, string(vB))
	// Output: true 2
}

// Iterators are bidirectional and see a stable snapshot of the store.
func ExampleDB_NewIterator() {
	db, _ := sealdb.Open(sealdb.DefaultConfig(sealdb.ModeSEALDB))
	defer db.Close()
	for _, k := range []string{"cherry", "apple", "banana"} {
		db.Put([]byte(k), []byte("fruit"))
	}

	it := db.NewIterator()
	defer it.Close()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		fmt.Println(string(it.Key()))
	}
	it.SeekToLast()
	it.Prev()
	fmt.Println("second to last:", string(it.Key()))
	// Output:
	// apple
	// banana
	// cherry
	// second to last: banana
}

// Snapshots pin a point-in-time view across later writes.
func ExampleDB_NewSnapshot() {
	db, _ := sealdb.Open(sealdb.DefaultConfig(sealdb.ModeSEALDB))
	defer db.Close()
	db.Put([]byte("k"), []byte("before"))
	snap := db.NewSnapshot()
	defer snap.Release()
	db.Put([]byte("k"), []byte("after"))

	old, _ := db.GetAt([]byte("k"), snap)
	cur, _ := db.Get([]byte("k"))
	fmt.Println(string(old), string(cur))
	// Output: before after
}

// Amplification reports the metrics the paper is built around.
func ExampleDB_Amplification() {
	db, _ := sealdb.Open(sealdb.DefaultConfig(sealdb.ModeSEALDB))
	defer db.Close()
	for i := 0; i < 1000; i++ {
		db.Put(fmt.Appendf(nil, "key%04d", i), make([]byte, 512))
	}
	amp := db.Amplification()
	// SEALDB's dynamic bands never trigger device read-modify-write.
	fmt.Printf("AWA %.1f, MWA == WA: %v\n", amp.AWA, amp.MWA == amp.WA)
	// Output: AWA 1.0, MWA == WA: true
}
