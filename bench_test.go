// Benchmarks regenerating every table and figure of the paper's
// evaluation (§IV). Each benchmark runs the corresponding experiment
// from the internal/bench harness and reports the figure's headline
// numbers as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation at smoke scale. The canonical
// (larger) runs are produced by cmd/sealdb-bench; see EXPERIMENTS.md.
package sealdb_test

import (
	"testing"

	"sealdb/internal/bench"
	"sealdb/internal/lsm"
)

// benchOptions keeps each figure fast enough to iterate under the
// default -benchtime; cmd/sealdb-bench runs the full-scale versions.
func benchOptions() bench.Options {
	return bench.QuickOptions()
}

func BenchmarkTable2DevicePerf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Metric {
			case "Sequential read (MB/s)":
				b.ReportMetric(r.HDD, "hdd-seqread-MB/s")
				b.ReportMetric(r.SMR, "smr-seqread-MB/s")
			case "Random write 4KiB (IOPS)":
				b.ReportMetric(r.HDD, "hdd-randwrite-iops")
				b.ReportMetric(r.SMR, "smr-randwrite-iops")
			}
		}
	}
}

func BenchmarkFig2LevelDBLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunLayout(benchOptions(), lsm.ModeLevelDB)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Compactions), "compactions")
		b.ReportMetric(r.MeanExtentsPerCompaction, "extents/compaction")
		b.ReportMetric(r.SpanMB, "span-MB")
	}
}

func BenchmarkFig3BandSweep(b *testing.B) {
	o := benchOptions()
	o.LoadMB = 8
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig3(o)
		if err != nil {
			b.Fatal(err)
		}
		first, last := rows[0], rows[len(rows)-1]
		b.ReportMetric(first.MWA, "mwa-smallest-band")
		b.ReportMetric(last.MWA, "mwa-largest-band")
		b.ReportMetric(last.BandsPerCompaction, "bands/compaction-largest")
	}
}

func BenchmarkFig8Micro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		base := rows[0]
		for _, r := range rows {
			n := r.Normalized(base)
			b.ReportMetric(n.RandWrite, r.Store+"-randwrite-x")
		}
	}
}

func BenchmarkFig9YCSB(b *testing.B) {
	o := benchOptions()
	o.LoadMB = 6
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig9(o)
		if err != nil {
			b.Fatal(err)
		}
		base := rows[0]
		for _, r := range rows {
			if base.Ops["A"] > 0 {
				b.ReportMetric(r.Ops["A"]/base.Ops["A"], r.Store+"-ycsbA-x")
			}
		}
	}
}

func BenchmarkFig10Compaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		profiles, err := bench.RunFig10(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range profiles {
			b.ReportMetric(p.TotalTime.Seconds(), p.Store+"-total-compaction-s")
			b.ReportMetric(p.MeanBytes/(1<<20), p.Store+"-mean-compaction-MB")
		}
	}
}

func BenchmarkFig11SEALDBLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunLayout(benchOptions(), lsm.ModeSEALDB)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Compactions), "compactions")
		b.ReportMetric(r.MeanExtentsPerCompaction, "extents/compaction")
		b.ReportMetric(r.FootprintMB, "footprint-MB")
	}
}

func BenchmarkFig12WriteAmp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig12(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.WA, r.Store+"-WA")
			b.ReportMetric(r.AWA, r.Store+"-AWA")
			b.ReportMetric(r.MWA, r.Store+"-MWA")
		}
	}
}

func BenchmarkFig13Fragments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := bench.RunFig13(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Bands), "dynamic-bands")
		b.ReportMetric(100*res.FragmentOfUsed, "fragments-pct")
	}
}

func BenchmarkFig14Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig14(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		base := rows[0]
		for _, r := range rows {
			n := r.Normalized(base)
			b.ReportMetric(n.RandWrite, r.Store+"-randwrite-x")
			b.ReportMetric(n.SeqRead, r.Store+"-seqread-x")
		}
	}
}
