package sealdb_test

import (
	"bytes"
	"fmt"
	"testing"

	"sealdb"
)

func TestPublicAPIQuickstart(t *testing.T) {
	db, err := sealdb.Open(sealdb.DefaultConfig(sealdb.ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := db.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("hello"))
	if err != nil || string(v) != "world" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := db.Get([]byte("missing")); err != sealdb.ErrNotFound {
		t.Fatalf("missing key: %v", err)
	}

	b := sealdb.NewBatch()
	for i := 0; i < 100; i++ {
		b.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	kvs, err := db.Scan([]byte("k010"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 5 || string(kvs[0].Key) != "k010" {
		t.Fatalf("scan: %v", kvs)
	}

	amp := db.Amplification()
	if amp.AWA != 1.0 {
		t.Errorf("SEALDB AWA = %v", amp.AWA)
	}
}

func TestPublicAPIReopen(t *testing.T) {
	cfg := sealdb.DefaultConfig(sealdb.ModeSEALDB)
	db, err := sealdb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("persisted"), []byte("yes"))
	dev := db.Device()
	db.Close()

	db2, err := sealdb.OpenDevice(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, err := db2.Get([]byte("persisted"))
	if err != nil || string(v) != "yes" {
		t.Fatalf("recovered read = %q, %v", v, err)
	}
}

func TestAllModesOpen(t *testing.T) {
	for _, mode := range []sealdb.Mode{
		sealdb.ModeLevelDB, sealdb.ModeLevelDBSets, sealdb.ModeSMRDB, sealdb.ModeSEALDB,
	} {
		db, err := sealdb.Open(sealdb.DefaultConfig(mode))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := db.Put([]byte("a"), []byte("b")); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		db.Close()
	}
}

func ExampleOpen() {
	db, err := sealdb.Open(sealdb.DefaultConfig(sealdb.ModeSEALDB))
	if err != nil {
		panic(err)
	}
	defer db.Close()
	db.Put([]byte("greeting"), []byte("hello, shingled world"))
	v, _ := db.Get([]byte("greeting"))
	fmt.Println(string(v))
	// Output: hello, shingled world
}

func TestPublicAPIIteratorBidirectional(t *testing.T) {
	db, err := sealdb.Open(sealdb.DefaultConfig(sealdb.ModeSEALDB))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("it%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	it := db.NewIterator()
	defer it.Close()
	it.SeekToLast()
	if !it.Valid() || string(it.Key()) != "it0199" {
		t.Fatalf("SeekToLast at %q", it.Key())
	}
	it.Prev()
	if string(it.Key()) != "it0198" {
		t.Fatalf("Prev at %q", it.Key())
	}
	it.Next()
	if string(it.Key()) != "it0199" {
		t.Fatalf("Next-after-Prev at %q", it.Key())
	}
	kvs, err := db.ScanReverse([]byte("it0010"), 3)
	if err != nil || len(kvs) != 3 || string(kvs[0].Key) != "it0010" {
		t.Fatalf("ScanReverse: %v %v", kvs, err)
	}
}

func TestPublicAPICompressionAndGC(t *testing.T) {
	cfg := sealdb.DefaultConfig(sealdb.ModeSEALDB)
	cfg.Compression = sealdb.FlateCompression
	db, err := sealdb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5000; i++ {
		db.Put([]byte(fmt.Sprintf("c%06d", i%2000)), bytes.Repeat([]byte("data"), 64))
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefragmentBands(0); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	profile := db.LevelProfile()
	if len(profile) == 0 {
		t.Fatal("no level profile")
	}
	if sz := db.ApproximateSize(nil, nil); sz <= 0 {
		t.Fatal("approximate size zero after load")
	}
	if v, err := db.Get([]byte("c000042")); err != nil || len(v) != 256 {
		t.Fatalf("read after maintenance: %v len=%d", err, len(v))
	}
}

func TestPublicAPIGeometryAndDevice(t *testing.T) {
	g := sealdb.DefaultGeometry()
	if g.SSTableSize != 256*1024 || g.BandSize != 10*g.SSTableSize {
		t.Errorf("default geometry: %+v", g)
	}
	pg := sealdb.PaperGeometry()
	if pg.SSTableSize != 4<<20 || pg.BandSize != 40<<20 || pg.DeviceTimeScale != 1 {
		t.Errorf("paper geometry: %+v", pg)
	}

	// Pre-building a device, then opening on it.
	cfg := sealdb.DefaultConfig(sealdb.ModeSEALDB)
	dev := sealdb.NewDevice(cfg)
	db, err := sealdb.OpenDevice(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	if db.Device() != dev {
		t.Error("DB not bound to the provided device")
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.UserWrites != 1 {
		t.Errorf("stats: %+v", st)
	}
	if db.Mode() != sealdb.ModeSEALDB {
		t.Errorf("mode %v", db.Mode())
	}
	db.Close()
}

func TestPublicAPISnapshotAndSeq(t *testing.T) {
	db, _ := sealdb.Open(sealdb.DefaultConfig(sealdb.ModeSEALDB))
	defer db.Close()
	db.Put([]byte("s"), []byte("1"))
	if db.Seq() == 0 {
		t.Error("sequence not advancing")
	}
	snap := db.NewSnapshot()
	defer snap.Release()
	db.Delete([]byte("s"))
	if v, err := db.GetAt([]byte("s"), snap); err != nil || string(v) != "1" {
		t.Errorf("snapshot read: %q %v", v, err)
	}
	if _, err := db.Get([]byte("s")); err != sealdb.ErrNotFound {
		t.Errorf("latest read after delete: %v", err)
	}
}
